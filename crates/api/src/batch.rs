//! Batch submission: many [`CheckRequest`]s in, one ordered
//! [`BatchReport`] out.
//!
//! A [`BatchRequest`] is an ordered collection of requests;
//! [`Session::run_batch`](crate::Session::run_batch) schedules them all
//! concurrently over the session's worker pool and returns the reports
//! in submission order (deterministic regardless of completion order),
//! together with [`BatchStats`] aggregates. [`BatchRequest::litmus_dir`]
//! is the loader the `c11check --litmus <dir>` batch mode is built on.

use crate::json::Json;
use crate::{CheckError, CheckReport, CheckRequest};
use c11_explore::Stats;
use std::time::Duration;

/// An ordered collection of requests to run as one batch.
#[derive(Clone, Debug, Default)]
pub struct BatchRequest {
    requests: Vec<CheckRequest>,
}

impl BatchRequest {
    /// An empty batch.
    pub fn new() -> BatchRequest {
        BatchRequest::default()
    }

    /// Appends a request (chainable).
    pub fn with(mut self, req: CheckRequest) -> Self {
        self.requests.push(req);
        self
    }

    /// Appends a request.
    pub fn push(&mut self, req: CheckRequest) {
        self.requests.push(req);
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` iff the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// A litmus-verdict request per `*.litmus` file in `dir` (sorted by
    /// file name — the deterministic order the reports come back in).
    pub fn litmus_dir(dir: &std::path::Path) -> Result<BatchRequest, CheckError> {
        let tests =
            c11_litmus::load_litmus_dir(dir).map_err(|e| CheckError::Parse(e.to_string()))?;
        Ok(BatchRequest {
            requests: tests.into_iter().map(CheckRequest::litmus).collect(),
        })
    }

    /// Consumes the batch into its requests (submission order).
    pub(crate) fn into_requests(self) -> Vec<CheckRequest> {
        self.requests
    }
}

impl IntoIterator for BatchRequest {
    type Item = CheckRequest;
    type IntoIter = std::vec::IntoIter<CheckRequest>;

    /// Consumes the batch into its requests, e.g. to rewrite them
    /// (`batch.into_iter().map(|r| r.backend(b)).collect()`).
    fn into_iter(self) -> Self::IntoIter {
        self.requests.into_iter()
    }
}

impl From<Vec<CheckRequest>> for BatchRequest {
    fn from(requests: Vec<CheckRequest>) -> BatchRequest {
        BatchRequest { requests }
    }
}

impl FromIterator<CheckRequest> for BatchRequest {
    fn from_iter<I: IntoIterator<Item = CheckRequest>>(iter: I) -> BatchRequest {
        BatchRequest {
            requests: iter.into_iter().collect(),
        }
    }
}

/// Aggregate statistics of one batch run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Requests in the batch.
    pub jobs: usize,
    /// Requests that produced a report.
    pub ok: usize,
    /// Requests that failed before execution (parse/mode errors).
    pub errors: usize,
    /// Requests rejected by queue backpressure
    /// ([`CheckError::Overloaded`]) — not genuine job failures, so they
    /// do not affect [`BatchReport::all_ok`].
    pub overloaded: usize,
    /// Reports cut short by a deadline or cancellation (their status is
    /// `"timed_out"`/`"cancelled"`); they count into `ok` as well, and
    /// like `overloaded` they do not affect [`BatchReport::all_ok`].
    pub interrupted: usize,
    /// Reports served from the session cache during this batch.
    pub cache_hits: usize,
    /// Litmus reports whose verdicts did not match expectations.
    pub litmus_failed: usize,
    /// Exploration stats merged over every successful report (sizes
    /// add, truncation ors; cached reports contribute their original
    /// exploration's numbers).
    pub explore: Stats,
    /// Wall-clock time of the whole batch, in microseconds (not the sum
    /// of per-job times — jobs overlap on the pool).
    pub wall_micros: u128,
}

/// The response to a [`BatchRequest`]: per-request results in submission
/// order plus the aggregates.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One entry per request, in submission order. Errors are
    /// per-item — a malformed request does not poison its batch.
    pub reports: Vec<Result<CheckReport, CheckError>>,
    /// The aggregates.
    pub stats: BatchStats,
}

impl BatchReport {
    /// Builds the report from collected per-job results (submission
    /// order) and the batch's wall time. Cache hits are counted off the
    /// reports themselves (their `cache_hit` flag), not off the
    /// session-global counter — concurrent activity on the same session
    /// must not be misattributed to this batch.
    pub(crate) fn aggregate(
        reports: Vec<Result<CheckReport, CheckError>>,
        wall: Duration,
    ) -> BatchReport {
        let mut stats = BatchStats {
            jobs: reports.len(),
            wall_micros: wall.as_micros(),
            ..BatchStats::default()
        };
        for report in reports.iter() {
            match report {
                Ok(r) => {
                    stats.ok += 1;
                    stats.cache_hits += usize::from(r.cache_hit());
                    stats.interrupted += usize::from(r.interrupt().is_some());
                    stats.explore = stats.explore.merged(&r.stats());
                    if let CheckReport::Litmus(l) = r {
                        // An interrupted litmus run never completed its
                        // verdict — a deadline hit is not a failure.
                        if !l.pass && r.interrupt().is_none() {
                            stats.litmus_failed += 1;
                        }
                    }
                }
                Err(CheckError::Overloaded) => stats.overloaded += 1,
                // A cancelled waiter is an interruption, not a job
                // failure — mirror the report-level statuses.
                Err(CheckError::Cancelled) => stats.interrupted += 1,
                Err(_) => stats.errors += 1,
            }
        }
        BatchReport { reports, stats }
    }

    /// `true` iff every request produced a report and every litmus
    /// verdict matched expectations.
    pub fn all_ok(&self) -> bool {
        self.stats.errors == 0 && self.stats.litmus_failed == 0
    }

    /// The aggregates as a `c11check/v1` `batch-summary` JSON object.
    /// `c11serve`'s trailer line carries these same keys (plus a
    /// session-level `explorations` counter).
    pub fn summary_json(&self) -> Json {
        let s = &self.stats;
        Json::obj(vec![
            ("schema", Json::str("c11check/v1")),
            ("mode", Json::str("batch-summary")),
            ("jobs", Json::from(s.jobs)),
            ("ok", Json::from(s.ok)),
            ("errors", Json::from(s.errors)),
            ("overloaded", Json::from(s.overloaded)),
            ("interrupted", Json::from(s.interrupted)),
            ("cache_hits", Json::from(s.cache_hits)),
            ("litmus_failed", Json::from(s.litmus_failed)),
            (
                "stats",
                Json::obj(vec![
                    ("unique", Json::from(s.explore.unique)),
                    ("generated", Json::from(s.explore.generated)),
                    ("finals", Json::from(s.explore.finals)),
                    ("truncated", Json::from(s.explore.truncated)),
                    ("stuck", Json::from(s.explore.stuck)),
                    ("wall_micros", Json::from(s.explore.wall_micros)),
                ]),
            ),
            ("wall_micros", Json::from(s.wall_micros)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Session, SessionConfig};

    #[test]
    fn batch_reports_come_back_in_submission_order() {
        let progs = [
            "vars x; thread t { x := 1; }",
            "vars x y; thread t1 { x := 1; } thread t2 { y := 1; }",
            "vars z; thread t { z := 3; z := 4; }",
        ];
        let batch: BatchRequest = progs.iter().map(|p| CheckRequest::program(*p)).collect();
        let session = Session::new(SessionConfig::default().workers(3));
        let out = session.run_batch(batch);
        assert_eq!(out.stats.jobs, 3);
        assert_eq!(out.stats.ok, 3);
        assert_eq!(out.stats.errors, 0);
        assert!(out.all_ok());
        // Order is submission order: the single-writer program first.
        let first = out.reports[0].as_ref().unwrap();
        assert_eq!(first.stats().finals, 1);
    }

    #[test]
    fn batch_errors_are_per_item() {
        let batch = BatchRequest::new()
            .with(CheckRequest::program("vars x; thread t { x := 1; }"))
            .with(CheckRequest::program("vars x; thread t { y := 1; }"));
        let session = Session::default();
        let out = session.run_batch(batch);
        assert_eq!(out.stats.jobs, 2);
        assert_eq!(out.stats.ok, 1);
        assert_eq!(out.stats.errors, 1);
        assert!(!out.all_ok());
        assert!(out.reports[0].is_ok());
        assert!(matches!(out.reports[1], Err(CheckError::Parse(_))));
    }

    #[test]
    fn summary_json_has_the_documented_shape() {
        let session = Session::default();
        let out = session.run_batch(
            BatchRequest::new().with(CheckRequest::program("vars x; thread t { x := 1; }")),
        );
        let v = Json::parse(&out.summary_json().render()).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("c11check/v1"));
        assert_eq!(v.get("mode").and_then(Json::as_str), Some("batch-summary"));
        assert_eq!(v.get("jobs").and_then(Json::as_usize), Some(1));
        assert_eq!(v.get("ok").and_then(Json::as_usize), Some(1));
        assert!(v.get("stats").and_then(|s| s.get("unique")).is_some());
    }
}
