//! A reusable checking service: one [`Session`] owns a worker pool and a
//! fingerprint-keyed result cache, and every request surface in the
//! workspace (the one-shot [`CheckRequest::run`], the `c11check` CLI's
//! litmus batch mode, the `c11serve` JSONL front-end) runs through it.
//!
//! ## Scheduling
//!
//! [`Session::submit`] enqueues a job and returns a [`JobId`];
//! [`Session::wait`] blocks until that job's report is ready. Jobs are
//! executed by a fixed pool of worker threads (spawned lazily on the
//! first `submit`, so sessions used only for inline [`Session::run`]
//! calls cost nothing). A *small* job — one whose request names the
//! default sequential engine — runs whole on the one pool worker that
//! picked it up; a *large* job — one carrying `Engine::Parallel` —
//! fans out over the parallel engine's own scoped workers
//! from the pool thread hosting it. [`SessionConfig::parallel_threshold`]
//! optionally upgrades wide sequential reduction-free jobs to the
//! parallel engine.
//!
//! ## Caching
//!
//! Results are cached under `(input fingerprint, model, bounds, mode,
//! traces, dot, contract)` — see [`Resolved::fingerprint`] for the input
//! identity, which reuses the fixed-seed FNV/splitmix machinery behind
//! `MemoryModel::state_fingerprint`. The engine is deliberately *not*
//! part of the key: every engine produces the same report for the same
//! request (a property the test suite pins corpus-wide), so a result
//! computed by one engine can answer a request naming another. What *is*
//! part of the key is the reduction's answer **contract**: a finals-only
//! report (source-set reduction) carries intentionally smaller
//! `unique`/`generated` counts and must never be served to an exhaustive
//! request, nor vice versa. Cache
//! hits return the originally-computed report with
//! [`Meta::cache_hit`](crate::Meta::cache_hit) flipped on. Concurrent
//! identical submissions coalesce: the first computes, the rest wait on
//! the pending slot — a warm or contended session performs at most one
//! exploration per distinct key.

use crate::batch::{BatchReport, BatchRequest};
use crate::{CheckError, CheckReport, CheckRequest, Mode, Resolved};
use c11_explore::{Budget, Engine, Interrupt, Reduction};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`Session`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionConfig {
    /// Worker threads servicing [`Session::submit`]ted jobs (clamped to
    /// ≥ 1; spawned lazily on first use).
    pub workers: usize,
    /// Cache reports keyed on input fingerprints (on by default).
    pub cache: bool,
    /// When non-zero: a job requesting the (default) sequential backend
    /// whose program has at least this many threads is upgraded to the
    /// parallel engine with [`SessionConfig::workers`] threads — "small
    /// jobs run whole on one worker, large jobs get the parallel
    /// backend". `0` (the default) disables the upgrade, preserving
    /// exact backend selection; explicitly-parallel requests are never
    /// downgraded either way.
    pub parallel_threshold: usize,
    /// Default wall-clock budget per job, measured from when compute
    /// starts (queue wait excluded). A request's own
    /// [`CheckRequest::timeout`] combines with this by minimum. `None`
    /// (the default) lets jobs run to their bounds.
    pub job_timeout: Option<Duration>,
    /// Hard ceiling on *ready* cached reports. When a fresh report would
    /// push the count past it, the least-recently-used ready entries are
    /// evicted (counted in [`SessionStats::evictions`]); pending slots
    /// are never evicted. `None` (the default) is unbounded.
    pub cache_capacity: Option<usize>,
    /// Backpressure: [`Session::submit`] on a queue already holding this
    /// many jobs returns [`CheckError::Overloaded`] instead of queueing
    /// unboundedly. `None` (the default) is unbounded. Inline
    /// [`Session::run`] calls bypass the queue and are never rejected.
    pub max_queue_depth: Option<usize>,
    /// Disk snapshot of the result cache (JSONL, see `persist`): loaded
    /// when the session is created and rewritten by
    /// [`Session::flush_cache`] (called automatically on drop). `None`
    /// (the default) keeps the cache purely in memory. Ignored when
    /// [`SessionConfig::cache`] is off.
    pub cache_path: Option<std::path::PathBuf>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            workers: 2,
            cache: true,
            parallel_threshold: 0,
            job_timeout: None,
            cache_capacity: None,
            max_queue_depth: None,
            cache_path: None,
        }
    }
}

impl SessionConfig {
    /// Sets the pool size (chainable).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Switches the result cache (chainable).
    pub fn cache(mut self, on: bool) -> Self {
        self.cache = on;
        self
    }

    /// Sets the thread-count threshold above which sequential jobs are
    /// upgraded to the parallel engine (chainable; `0` disables).
    pub fn parallel_threshold(mut self, threads: usize) -> Self {
        self.parallel_threshold = threads;
        self
    }

    /// Sets the default per-job deadline (chainable).
    pub fn job_timeout(mut self, d: Duration) -> Self {
        self.job_timeout = Some(d);
        self
    }

    /// Bounds the result cache to `n` ready reports, LRU-evicted
    /// (chainable).
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = Some(n);
        self
    }

    /// Bounds the submission queue to `n` waiting jobs (chainable).
    pub fn max_queue_depth(mut self, n: usize) -> Self {
        self.max_queue_depth = Some(n);
        self
    }

    /// Persists the result cache to a JSONL snapshot at `path`
    /// (chainable): loaded on session creation, rewritten on drop.
    pub fn cache_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }
}

/// A handle to a job submitted to a [`Session`]; redeem it exactly once
/// with [`Session::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

/// Counters describing what a [`Session`] has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests accepted (`submit`, `run` and `run_batch` items alike).
    pub submitted: usize,
    /// Requests finished (reports produced or errors surfaced).
    pub completed: usize,
    /// Reports served from the result cache.
    pub cache_hits: usize,
    /// Actual engine runs (cache misses that computed a fresh report).
    /// On a warm cache this stays at one per distinct cache key no
    /// matter how many requests were served.
    pub explorations: usize,
    /// Engine runs that used no reduction (part of `explorations`).
    pub explorations_none: usize,
    /// Engine runs under the sleep-set reduction (part of `explorations`).
    pub explorations_sleep_set: usize,
    /// Engine runs under the source-set reduction (part of `explorations`).
    pub explorations_source_set: usize,
    /// Requests rejected before execution (parse/mode errors).
    pub errors: usize,
    /// Ready cache entries evicted to hold [`SessionConfig::cache_capacity`].
    pub evictions: usize,
    /// Submissions rejected with [`CheckError::Overloaded`] because the
    /// queue was at [`SessionConfig::max_queue_depth`].
    pub overloaded: usize,
    /// Cache entries restored from the [`SessionConfig::cache_path`]
    /// snapshot when the session was created.
    pub persist_loaded: usize,
    /// Snapshot lines skipped on load as corrupt, stale-versioned or
    /// otherwise untrustworthy (the load survives; the lines do not).
    pub persist_skipped: usize,
    /// Snapshot loads or rewrites skipped because another process held
    /// the snapshot's exclusive lock (concurrent replicas sharing one
    /// `cache_path` degrade to cold starts instead of interleaving with
    /// a half-finished rewrite).
    pub persist_locked: usize,
}

/// The answer contract a report satisfies: what a request under a given
/// reduction is entitled to, and therefore what a cached report can
/// serve. Derived from the request's [`Reduction`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub(crate) enum Contract {
    /// Every reachable configuration visited; `unique`/`generated` are
    /// the true state-space counts ([`Reduction::None`] and
    /// [`Reduction::SleepSet`]).
    #[default]
    Exhaustive,
    /// Finals, verdicts and violations exact; intermediate-state counts
    /// intentionally smaller ([`Reduction::SourceSet`]).
    FinalsOnly,
}

impl Contract {
    pub(crate) fn of(r: Reduction) -> Contract {
        match r {
            Reduction::None | Reduction::SleepSet => Contract::Exhaustive,
            Reduction::SourceSet => Contract::FinalsOnly,
        }
    }
}

/// The result-cache key. The engine is deliberately absent — see the
/// module docs for why — while the reduction contributes its answer
/// [`Contract`], and [`Mode`] contributes its discriminant plus
/// whatever identity the variant carries.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// The report-schema version the cached report was rendered under
    /// (`persist::SCHEMA_VERSION`). Constant within one binary, but an
    /// explicit key component so persisted entries are versioned and a
    /// snapshot from a different schema can never alias a current key.
    pub(crate) schema: &'static str,
    pub(crate) fingerprint: u128,
    pub(crate) model: crate::ModelChoice,
    pub(crate) bounds: crate::Bounds,
    pub(crate) mode: ModeKey,
    pub(crate) traces: Option<bool>,
    pub(crate) dot: usize,
    /// The reduction's answer contract: finals-only answers never serve
    /// exhaustive requests (and vice versa).
    pub(crate) contract: Contract,
    /// Effective deadline in milliseconds. Part of the key so a report
    /// computed under a tight deadline can never answer a patient
    /// request (and vice versa); `None` for unbudgeted jobs.
    pub(crate) timeout_ms: Option<u128>,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) enum ModeKey {
    Outcomes,
    CountOnly,
    /// Predicate identity: clones of one `Invariant` hit; same-named but
    /// distinct predicates miss instead of aliasing.
    Invariant(PredId),
    LitmusVerdict,
}

/// Predicate identity by `Arc` pointer. Holding the `Arc` itself (not
/// just its address) keeps the allocation alive for the cache's
/// lifetime, so a recycled heap address can never alias a dropped
/// predicate's cached report.
#[derive(Clone)]
pub(crate) struct PredId(crate::PredFn);

impl std::fmt::Debug for PredId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PredId({:p})", Arc::as_ptr(&self.0))
    }
}

impl PartialEq for PredId {
    fn eq(&self, other: &PredId) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for PredId {}

impl std::hash::Hash for PredId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_usize(Arc::as_ptr(&self.0) as *const () as usize);
    }
}

impl CacheKey {
    pub(crate) fn of(r: &Resolved) -> CacheKey {
        let mode = match &r.mode {
            Mode::Outcomes => ModeKey::Outcomes,
            Mode::CountOnly => ModeKey::CountOnly,
            Mode::Invariant(inv) => ModeKey::Invariant(PredId(inv.shared_pred())),
            Mode::LitmusVerdict => ModeKey::LitmusVerdict,
        };
        // Litmus verdicts ignore the model (they always contrast RA vs
        // SC), traces and dot — normalise those out of the key so
        // harmless request-tagging differences still hit.
        let litmus = matches!(mode, ModeKey::LitmusVerdict);
        CacheKey {
            schema: crate::persist::SCHEMA_VERSION,
            fingerprint: r.fingerprint(),
            model: if litmus {
                crate::ModelChoice::default()
            } else {
                r.model
            },
            bounds: r.bounds,
            mode,
            traces: if litmus { None } else { r.traces },
            dot: if litmus { 0 } else { r.dot },
            contract: Contract::of(r.reduction),
            timeout_ms: r.timeout.map(|d| d.as_millis()),
        }
    }
}

/// One cache slot: `Pending` while the first submitter computes, then
/// `Ready` — or `Poisoned` if the compute panicked (waiters retry and
/// the key is evicted). Waiters block on the slot's condvar, never on
/// the whole map.
type CacheSlot = Arc<CacheEntry>;

struct CacheEntry {
    state: Mutex<SlotState>,
    cv: Condvar,
    /// Mirrors `state == Ready` without taking the state mutex, so the
    /// LRU sweep (run under the map lock) never locks a slot — pending
    /// slots are skipped by this flag, keeping the lock order strictly
    /// slot-then-map and pending slots un-evictable.
    ready: AtomicBool,
    /// LRU clock stamp: bumped from the map's tick on publish and on
    /// every warm hit.
    last_used: AtomicU64,
}

impl CacheEntry {
    fn pending() -> CacheSlot {
        Arc::new(CacheEntry {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
            ready: AtomicBool::new(false),
            last_used: AtomicU64::new(0),
        })
    }
}

enum SlotState {
    Pending,
    // Boxed: a cache can hold many Pending/Poisoned slots, which should
    // not each pay for an inline report.
    Ready(Box<CheckReport>),
    Poisoned,
}

/// The result cache: slot map plus the logical LRU clock.
#[derive(Default)]
struct CacheState {
    slots: HashMap<CacheKey, CacheSlot>,
    tick: u64,
}

/// A completed (or pending) job's result cell.
type JobResult = Option<Result<CheckReport, CheckError>>;

struct Inner {
    cfg: SessionConfig,
    queue: Mutex<VecDeque<(u64, CheckRequest, Budget)>>,
    queue_cv: Condvar,
    /// `id → None` while in flight, `Some(result)` when done; removed
    /// when collected by `wait`.
    results: Mutex<HashMap<u64, JobResult>>,
    results_cv: Condvar,
    cache: Mutex<CacheState>,
    /// Cancel tokens of jobs not yet finished, keyed by id — created at
    /// submission so [`Session::cancel`] reaches jobs still queued.
    jobs: Mutex<HashMap<u64, Budget>>,
    shutdown: AtomicBool,
    submitted: AtomicUsize,
    completed: AtomicUsize,
    cache_hits: AtomicUsize,
    explorations: AtomicUsize,
    explorations_none: AtomicUsize,
    explorations_sleep_set: AtomicUsize,
    explorations_source_set: AtomicUsize,
    errors: AtomicUsize,
    evictions: AtomicUsize,
    overloaded: AtomicUsize,
    persist_loaded: AtomicUsize,
    persist_skipped: AtomicUsize,
    persist_locked: AtomicUsize,
}

impl Inner {
    /// Resolves, schedules (backend upgrade) and computes one request,
    /// consulting the cache. Runs on a pool worker for submitted jobs
    /// and on the caller's thread for [`Session::run`]. `submitted` is
    /// counted at acceptance (`submit`/`run`), not here; the
    /// completed/errors counters stay consistent even if a user
    /// invariant closure panics mid-compute.
    fn execute(&self, req: CheckRequest, token: &Budget) -> Result<CheckReport, CheckError> {
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.execute_inner(req, token)
        }));
        match out {
            Ok(result) => {
                if result.is_err() {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
                self.completed.fetch_add(1, Ordering::Relaxed);
                result
            }
            Err(panic) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.completed.fetch_add(1, Ordering::Relaxed);
                std::panic::resume_unwind(panic);
            }
        }
    }

    fn execute_inner(&self, req: CheckRequest, token: &Budget) -> Result<CheckReport, CheckError> {
        let mut resolved = req.resolve()?;
        // Large-job upgrade: wide programs get the parallel engine.
        // Reduced jobs are left alone — reductions are sequential
        // algorithms, and rewriting the request would change its
        // contract behind the caller's back.
        let t = self.cfg.parallel_threshold;
        if t > 0
            && resolved.engine == Engine::Sequential
            && resolved.reduction == Reduction::None
            && resolved.threads() >= t
        {
            resolved.engine = Engine::Parallel {
                workers: self.cfg.workers.max(1),
            };
        }
        // The effective deadline is the tighter of the request's own
        // timeout and the session default; it participates in the cache
        // key, so stamping it on `resolved` before keying is essential.
        resolved.timeout = match (resolved.timeout, self.cfg.job_timeout) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if !self.cfg.cache {
            self.count_exploration(resolved.reduction);
            return Ok(resolved.compute(token));
        }
        self.cached_compute(resolved, token)
    }

    /// Counts one engine run, total and per reduction (the service's
    /// `session-stats` probes report both).
    fn count_exploration(&self, reduction: Reduction) {
        self.explorations.fetch_add(1, Ordering::Relaxed);
        let per = match reduction {
            Reduction::None => &self.explorations_none,
            Reduction::SleepSet => &self.explorations_sleep_set,
            Reduction::SourceSet => &self.explorations_source_set,
        };
        per.fetch_add(1, Ordering::Relaxed);
    }

    fn cached_compute(
        &self,
        resolved: Resolved,
        token: &Budget,
    ) -> Result<CheckReport, CheckError> {
        let key = CacheKey::of(&resolved);
        loop {
            let (slot, owner) = {
                let mut cache = self.cache.lock().unwrap();
                match cache.slots.entry(key.clone()) {
                    Entry::Occupied(e) => (e.get().clone(), false),
                    Entry::Vacant(v) => {
                        let slot = CacheEntry::pending();
                        v.insert(slot.clone());
                        (slot, true)
                    }
                }
            };
            if owner {
                return Ok(self.compute_as_owner(&key, &slot, &resolved, token));
            }
            match self.wait_on_slot(&slot, token)? {
                Some(report) => return Ok(report),
                // Poisoned, or a *different* job's cancellation: retry —
                // this thread becomes the new owner (and surfaces the
                // panic itself if the compute deterministically panics).
                None => continue,
            }
        }
    }

    /// First submitter for a key: compute outside any lock, publish,
    /// wake coalesced waiters, then update the LRU map. Invariant
    /// predicates are arbitrary user closures, so a panic must not
    /// strand the pending slot: poison it, evict the key and let the
    /// panic propagate to this caller only.
    fn compute_as_owner(
        &self,
        key: &CacheKey,
        slot: &CacheSlot,
        resolved: &Resolved,
        token: &Budget,
    ) -> CheckReport {
        let computed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| resolved.compute(token)));
        let report = match computed {
            Ok(report) => report,
            Err(panic) => {
                self.evict_exact(key, slot);
                *slot.state.lock().unwrap() = SlotState::Poisoned;
                slot.cv.notify_all();
                std::panic::resume_unwind(panic);
            }
        };
        self.count_exploration(resolved.reduction);
        let interrupted = report.interrupt().is_some();
        *slot.state.lock().unwrap() = SlotState::Ready(Box::new(report.clone()));
        slot.ready.store(true, Ordering::Release);
        slot.cv.notify_all();
        let mut cache = self.cache.lock().unwrap();
        if interrupted {
            // Timed-out / cancelled reports answer their coalesced
            // waiters but never persist: a later identical request
            // deserves a fresh attempt.
            if let Some(cur) = cache.slots.get(key) {
                if Arc::ptr_eq(cur, slot) {
                    cache.slots.remove(key);
                }
            }
        } else {
            cache.tick += 1;
            slot.last_used.store(cache.tick, Ordering::Relaxed);
            self.evict_over_capacity(&mut cache);
        }
        report
    }

    /// Blocks a coalesced waiter on the slot. Returns `Ok(Some(report))`
    /// on a warm result, `Ok(None)` when the waiter should retry as a
    /// new owner (poisoned slot, or a cancelled report caused by *some
    /// other* job's cancel token), and `Err(Cancelled)` when this
    /// waiter's own job is cancelled while still blocked.
    fn wait_on_slot(
        &self,
        slot: &CacheSlot,
        token: &Budget,
    ) -> Result<Option<CheckReport>, CheckError> {
        let report = {
            let mut state = slot.state.lock().unwrap();
            loop {
                match &*state {
                    SlotState::Pending => {
                        let (next, _timed_out) = slot
                            .cv
                            .wait_timeout(state, Duration::from_millis(20))
                            .unwrap();
                        state = next;
                        if matches!(*state, SlotState::Pending) && token.is_cancelled() {
                            return Err(CheckError::Cancelled);
                        }
                    }
                    SlotState::Ready(report) => {
                        if report.interrupt() == Some(Interrupt::Cancelled) && !token.is_cancelled()
                        {
                            // The owner's job was cancelled, ours was
                            // not — recompute instead of inheriting its
                            // cancellation.
                            return Ok(None);
                        }
                        break (**report).clone();
                    }
                    SlotState::Poisoned => return Ok(None),
                }
            }
        };
        let mut report = report;
        report.set_cache_hit(true);
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        // Touch the LRU stamp (slot lock released above; map lock only).
        let mut cache = self.cache.lock().unwrap();
        cache.tick += 1;
        slot.last_used.store(cache.tick, Ordering::Relaxed);
        Ok(Some(report))
    }

    /// Removes `key` only if it still maps to `slot` — a later fresh
    /// slot under the same key must not be collateral damage.
    fn evict_exact(&self, key: &CacheKey, slot: &CacheSlot) {
        let mut cache = self.cache.lock().unwrap();
        if let Some(cur) = cache.slots.get(key) {
            if Arc::ptr_eq(cur, slot) {
                cache.slots.remove(key);
            }
        }
    }

    /// Evicts least-recently-used *ready* entries until the ready count
    /// fits `cache_capacity`. Pending slots are invisible to the sweep
    /// (their `ready` flag is false), so in-flight coalescing is never
    /// broken by eviction. Called with the map lock held.
    fn evict_over_capacity(&self, cache: &mut CacheState) {
        let Some(cap) = self.cfg.cache_capacity else {
            return;
        };
        loop {
            let mut ready = 0usize;
            let mut oldest: Option<(CacheKey, u64)> = None;
            for (key, slot) in &cache.slots {
                if !slot.ready.load(Ordering::Acquire) {
                    continue;
                }
                ready += 1;
                let stamp = slot.last_used.load(Ordering::Relaxed);
                let older = match &oldest {
                    None => true,
                    Some((_, best)) => stamp < *best,
                };
                if older {
                    oldest = Some((key.clone(), stamp));
                }
            }
            if ready <= cap {
                return;
            }
            let (victim, _) = oldest.expect("ready > cap ≥ 0 implies a ready entry exists");
            cache.slots.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A long-lived checking service: shared worker pool, shared result
/// cache, batch scheduling. See the module docs for the design.
///
/// ```
/// use c11_api::{CheckReport, CheckRequest, Session, SessionConfig};
///
/// let session = Session::new(SessionConfig::default().workers(2));
/// let req = || CheckRequest::program("vars x; thread t { x := 1; }");
/// let cold = session.run(req()).unwrap();
/// let warm = session.run(req()).unwrap();
/// assert!(!cold.cache_hit() && warm.cache_hit());
/// assert_eq!(session.stats().explorations, 1);
/// ```
pub struct Session {
    inner: Arc<Inner>,
    pool: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_id: std::sync::atomic::AtomicU64,
}

impl Default for Session {
    fn default() -> Self {
        Session::new(SessionConfig::default())
    }
}

impl Session {
    /// A session with the given configuration. No threads are spawned
    /// until the first [`Session::submit`]. With
    /// [`SessionConfig::cache_path`] set, the snapshot at that path (if
    /// any) warms the cache before the session serves its first request;
    /// corrupt or stale-versioned lines are skipped and counted in
    /// [`SessionStats::persist_skipped`].
    pub fn new(cfg: SessionConfig) -> Session {
        let session = Session {
            inner: Arc::new(Inner {
                cfg,
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                results: Mutex::new(HashMap::new()),
                results_cv: Condvar::new(),
                cache: Mutex::new(CacheState::default()),
                jobs: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
                submitted: AtomicUsize::new(0),
                completed: AtomicUsize::new(0),
                cache_hits: AtomicUsize::new(0),
                explorations: AtomicUsize::new(0),
                explorations_none: AtomicUsize::new(0),
                explorations_sleep_set: AtomicUsize::new(0),
                explorations_source_set: AtomicUsize::new(0),
                errors: AtomicUsize::new(0),
                evictions: AtomicUsize::new(0),
                overloaded: AtomicUsize::new(0),
                persist_loaded: AtomicUsize::new(0),
                persist_skipped: AtomicUsize::new(0),
                persist_locked: AtomicUsize::new(0),
            }),
            pool: Mutex::new(Vec::new()),
            next_id: std::sync::atomic::AtomicU64::new(0),
        };
        session.load_cache();
        session
    }

    /// Takes the snapshot's exclusive advisory lock (a sidecar
    /// `<path>.lock` file — the snapshot itself is replaced by rename on
    /// every rewrite, so a lock on its inode would not survive a flush).
    /// The lock is released when the returned handle drops. `None` when
    /// another process holds it: the caller skips its load/rewrite and
    /// counts the skip, so replicas sharing one `cache_path` never read
    /// a half-renamed snapshot or clobber each other's rewrite.
    fn lock_snapshot(path: &std::path::Path) -> Option<std::fs::File> {
        let lock = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path.with_extension("lock"))
            .ok()?;
        match lock.try_lock() {
            Ok(()) => Some(lock),
            Err(_) => None,
        }
    }

    /// Warms the cache from the configured snapshot. Missing file = cold
    /// start; unreadable lines are skipped and counted, never trusted; a
    /// snapshot another process holds locked is skipped wholesale and
    /// counted in [`SessionStats::persist_locked`].
    fn load_cache(&self) {
        let inner = &self.inner;
        let Some(path) = inner.cfg.cache_path.as_ref().filter(|_| inner.cfg.cache) else {
            return;
        };
        let Some(_held) = Self::lock_snapshot(path) else {
            inner.persist_locked.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let Ok(contents) = std::fs::read_to_string(path) else {
            return;
        };
        let mut cache = inner.cache.lock().unwrap();
        for line in contents.lines() {
            if line.is_empty() {
                continue;
            }
            match crate::persist::parse_line(line) {
                Ok((key, report)) => {
                    let slot = CacheEntry::pending();
                    *slot.state.lock().unwrap() = SlotState::Ready(Box::new(report));
                    slot.ready.store(true, Ordering::Release);
                    cache.tick += 1;
                    slot.last_used.store(cache.tick, Ordering::Relaxed);
                    // Later lines win: the snapshot is append-ordered, so
                    // a rewritten entry supersedes an earlier duplicate.
                    cache.slots.insert(key, slot);
                    inner.persist_loaded.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    inner.persist_skipped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // The snapshot may have been written under a larger (or no)
        // capacity; this session's ceiling still holds.
        inner.evict_over_capacity(&mut cache);
    }

    /// Rewrites the [`SessionConfig::cache_path`] snapshot from the
    /// current ready cache entries and returns how many were written.
    /// Interrupted and invariant-keyed entries are never written;
    /// corrupt lines a previous load skipped are dropped for good (the
    /// snapshot is rewritten whole, atomically via a temp file +
    /// rename). A no-op returning `Ok(0)` without a path or with the
    /// cache off. Called automatically when the session drops.
    pub fn flush_cache(&self) -> std::io::Result<usize> {
        let inner = &self.inner;
        let Some(path) = inner.cfg.cache_path.as_ref().filter(|_| inner.cfg.cache) else {
            return Ok(0);
        };
        // Same exclusive lock as the load: a replica that cannot take it
        // leaves the snapshot to the holder rather than racing the
        // rename, and the skip is visible in the stats.
        let Some(_held) = Self::lock_snapshot(path) else {
            inner.persist_locked.fetch_add(1, Ordering::Relaxed);
            return Ok(0);
        };
        // Snapshot the ready slots under the map lock, then render
        // outside it (slot locks are taken only after the map lock is
        // released, honouring the slot-then-map lock order).
        let slots: Vec<(CacheKey, CacheSlot)> = {
            let cache = inner.cache.lock().unwrap();
            cache
                .slots
                .iter()
                .filter(|(_, slot)| slot.ready.load(Ordering::Acquire))
                .map(|(key, slot)| (key.clone(), slot.clone()))
                .collect()
        };
        let mut lines = String::new();
        let mut written = 0usize;
        for (key, slot) in slots {
            let state = slot.state.lock().unwrap();
            let SlotState::Ready(report) = &*state else {
                continue;
            };
            if let Some(line) = crate::persist::persist_line(&key, report) {
                lines.push_str(&line);
                lines.push('\n');
                written += 1;
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, lines)?;
        std::fs::rename(&tmp, path)?;
        Ok(written)
    }

    /// The session's configuration.
    pub fn config(&self) -> SessionConfig {
        self.inner.cfg.clone()
    }

    /// Runs one request inline on the calling thread (through the cache,
    /// bypassing the pool). This is what [`CheckRequest::run`] shims to.
    pub fn run(&self, req: CheckRequest) -> Result<CheckReport, CheckError> {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.execute(req, &Budget::unlimited())
    }

    /// Enqueues a request on the worker pool and returns a handle to
    /// redeem with [`Session::wait`]. Spawns the pool on first use.
    ///
    /// With [`SessionConfig::max_queue_depth`] set, a full queue rejects
    /// the request with [`CheckError::Overloaded`] instead of queueing
    /// it — the request is *not* counted as submitted and gets no id.
    pub fn submit(&self, req: CheckRequest) -> Result<JobId, CheckError> {
        self.ensure_pool();
        let token = Budget::unlimited();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.results.lock().unwrap().insert(id, None);
        self.inner.jobs.lock().unwrap().insert(id, token.clone());
        {
            // Depth check and push under one queue lock so the bound is
            // exact under concurrent submitters.
            let mut queue = self.inner.queue.lock().unwrap();
            if let Some(depth) = self.inner.cfg.max_queue_depth {
                if queue.len() >= depth {
                    drop(queue);
                    self.inner.results.lock().unwrap().remove(&id);
                    self.inner.jobs.lock().unwrap().remove(&id);
                    self.inner.overloaded.fetch_add(1, Ordering::Relaxed);
                    return Err(CheckError::Overloaded);
                }
            }
            self.inner.submitted.fetch_add(1, Ordering::Relaxed);
            queue.push_back((id, req, token));
        }
        self.inner.queue_cv.notify_one();
        Ok(JobId(id))
    }

    /// Requests cooperative cancellation of a submitted job. Queued jobs
    /// trip before exploring; running jobs stop at their next budget
    /// poll; either way [`Session::wait`] returns promptly with a
    /// `"cancelled"` report. Returns `false` when the job has already
    /// finished (or the id is unknown) — cancellation arrived too late
    /// and the completed result stands.
    pub fn cancel(&self, id: JobId) -> bool {
        match self.inner.jobs.lock().unwrap().get(&id.0) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Ready reports currently held in the result cache (pending
    /// in-flight slots excluded). Never exceeds
    /// [`SessionConfig::cache_capacity`] when one is set.
    pub fn cache_len(&self) -> usize {
        let cache = self.inner.cache.lock().unwrap();
        cache
            .slots
            .values()
            .filter(|s| s.ready.load(Ordering::Acquire))
            .count()
    }

    /// Blocks until the job's report is ready and returns it. Each
    /// [`JobId`] can be redeemed exactly once; a second `wait` (or a
    /// foreign id) yields [`CheckError::Session`].
    pub fn wait(&self, id: JobId) -> Result<CheckReport, CheckError> {
        let mut results = self.inner.results.lock().unwrap();
        loop {
            match results.get(&id.0) {
                None => {
                    return Err(CheckError::Session(format!(
                        "job {} is unknown or was already collected",
                        id.0
                    )));
                }
                Some(None) => {
                    results = self.inner.results_cv.wait(results).unwrap();
                }
                Some(Some(_)) => {
                    let done = results.remove(&id.0).flatten();
                    return done.expect("checked Some(Some(..)) above");
                }
            }
        }
    }

    /// Submits every request of the batch to the pool, waits for all of
    /// them, and returns the reports **in submission order** together
    /// with aggregate statistics. Errors are per-item: one bad request
    /// does not poison the batch.
    pub fn run_batch(&self, batch: BatchRequest) -> BatchReport {
        let t0 = Instant::now();
        let ids: Vec<Result<JobId, CheckError>> = batch
            .into_requests()
            .into_iter()
            .map(|r| self.submit(r))
            .collect();
        let reports: Vec<Result<CheckReport, CheckError>> = ids
            .into_iter()
            .map(|id| match id {
                Ok(id) => self.wait(id),
                Err(rejected) => Err(rejected),
            })
            .collect();
        BatchReport::aggregate(reports, t0.elapsed())
    }

    /// The session's counters so far.
    pub fn stats(&self) -> SessionStats {
        let i = &self.inner;
        SessionStats {
            submitted: i.submitted.load(Ordering::Relaxed),
            completed: i.completed.load(Ordering::Relaxed),
            cache_hits: i.cache_hits.load(Ordering::Relaxed),
            explorations: i.explorations.load(Ordering::Relaxed),
            explorations_none: i.explorations_none.load(Ordering::Relaxed),
            explorations_sleep_set: i.explorations_sleep_set.load(Ordering::Relaxed),
            explorations_source_set: i.explorations_source_set.load(Ordering::Relaxed),
            errors: i.errors.load(Ordering::Relaxed),
            evictions: i.evictions.load(Ordering::Relaxed),
            overloaded: i.overloaded.load(Ordering::Relaxed),
            persist_loaded: i.persist_loaded.load(Ordering::Relaxed),
            persist_skipped: i.persist_skipped.load(Ordering::Relaxed),
            persist_locked: i.persist_locked.load(Ordering::Relaxed),
        }
    }

    fn ensure_pool(&self) {
        let mut pool = self.pool.lock().unwrap();
        if !pool.is_empty() {
            return;
        }
        for i in 0..self.inner.cfg.workers.max(1) {
            let inner = self.inner.clone();
            let handle = std::thread::Builder::new()
                .name(format!("c11-session-{i}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn session worker");
            pool.push(handle);
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        for handle in self.pool.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
        // Best-effort snapshot after the pool is quiet; a full-disk or
        // permission failure must not turn a drop into a panic.
        let _ = self.flush_cache();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = inner.queue_cv.wait(queue).unwrap();
            }
        };
        let Some((id, req, token)) = job else { return };
        // A panicking job (user invariant closure) must neither kill the
        // worker nor leave the job's result cell empty forever.
        // `execute` keeps the counters consistent before re-raising, so
        // this only has to keep the worker alive and fill the result.
        let out =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inner.execute(req, &token)))
                .unwrap_or_else(|panic| {
                    let what = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    Err(CheckError::Session(format!("job panicked: {what}")))
                });
        inner.jobs.lock().unwrap().remove(&id);
        inner.results.lock().unwrap().insert(id, Some(out));
        inner.results_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bounds, CheckRequest, Invariant, Mode};

    const SB: &str = "vars x y;
         thread t1 { x := 1; r0 <- y; }
         thread t2 { y := 1; r0 <- x; }";

    #[test]
    fn run_caches_by_fingerprint_modulo_formatting() {
        let session = Session::default();
        let cold = session.run(CheckRequest::program(SB)).unwrap();
        // Same program, different whitespace: the parse-level
        // fingerprint must hit.
        let warm = session
            .run(CheckRequest::program(
                "vars x y;\nthread t1 { x := 1; r0 <- y; }\nthread t2 { y := 1; r0 <- x; }",
            ))
            .unwrap();
        assert!(!cold.cache_hit());
        assert!(warm.cache_hit());
        assert_eq!(session.stats().explorations, 1);
        assert_eq!(session.stats().cache_hits, 1);
        // Identical payload either way.
        let (CheckReport::Outcomes(a), CheckReport::Outcomes(b)) = (&cold, &warm) else {
            panic!();
        };
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn distinct_questions_do_not_alias() {
        let session = Session::default();
        session.run(CheckRequest::program(SB)).unwrap();
        // Different mode, model, bounds, traces, dot: all misses.
        for req in [
            CheckRequest::program(SB).mode(Mode::CountOnly),
            CheckRequest::program(SB).model(crate::ModelChoice::Sc),
            CheckRequest::program(SB).bounds(Bounds::default().max_events(8)),
            CheckRequest::program(SB).traces(true),
            CheckRequest::program(SB).dot(1),
        ] {
            let r = session.run(req).unwrap();
            assert!(!r.cache_hit());
        }
        assert_eq!(session.stats().explorations, 6);
        assert_eq!(session.stats().cache_hits, 0);
    }

    #[test]
    fn litmus_keys_ignore_model_traces_and_dot() {
        // LitmusVerdict always contrasts RA vs SC and produces no
        // traces/DOT, so harmless request-tagging differences must
        // still hit the cache.
        let session = Session::default();
        let test = c11_litmus::corpus().remove(0);
        let cold = session.run(CheckRequest::litmus(test.clone())).unwrap();
        assert!(!cold.cache_hit());
        let tagged = session
            .run(
                CheckRequest::litmus(test)
                    .model(crate::ModelChoice::Sc)
                    .traces(true)
                    .dot(1),
            )
            .unwrap();
        assert!(tagged.cache_hit());
        assert_eq!(session.stats().explorations, 1);
    }

    #[test]
    fn invariant_caching_is_by_predicate_identity() {
        let session = Session::default();
        let inv = Invariant::new("p", |_v| true);
        let req = |i: &Invariant| CheckRequest::program(SB).mode(Mode::Invariant(i.clone()));
        assert!(!session.run(req(&inv)).unwrap().cache_hit());
        assert!(session.run(req(&inv)).unwrap().cache_hit());
        // Same name, different closure: must NOT alias.
        let other = Invariant::new("p", |_v| true);
        assert!(!session.run(req(&other)).unwrap().cache_hit());
        assert_eq!(session.stats().explorations, 2);
    }

    #[test]
    fn submit_wait_round_trips_and_ids_are_single_use() {
        let session = Session::new(SessionConfig::default().workers(2));
        let a = session.submit(CheckRequest::program(SB)).unwrap();
        let b = session
            .submit(CheckRequest::program("vars x; thread t { x := 1; }"))
            .unwrap();
        let rb = session.wait(b).unwrap();
        let ra = session.wait(a).unwrap();
        assert!(matches!(ra, CheckReport::Outcomes(_)));
        assert!(matches!(rb, CheckReport::Outcomes(_)));
        // Double-redeem and foreign ids error instead of hanging.
        assert!(matches!(session.wait(a), Err(CheckError::Session(_))));
        assert!(matches!(
            session.wait(JobId(u64::MAX)),
            Err(CheckError::Session(_))
        ));
    }

    #[test]
    fn submit_surfaces_parse_errors_at_wait() {
        let session = Session::default();
        let id = session
            .submit(CheckRequest::program("vars x; thread t { y := 1; }"))
            .unwrap();
        assert!(matches!(session.wait(id), Err(CheckError::Parse(_))));
        assert_eq!(session.stats().errors, 1);
    }

    #[test]
    fn parallel_threshold_upgrades_wide_sequential_jobs() {
        let session = Session::new(SessionConfig::default().workers(3).parallel_threshold(2));
        let report = session.run(CheckRequest::program(SB)).unwrap();
        assert_eq!(
            report.meta().engine,
            Engine::Parallel { workers: 3 },
            "2-thread program at threshold 2 must be upgraded"
        );
        // Narrow jobs stay sequential; explicit choices are untouched.
        let narrow = session
            .run(CheckRequest::program("vars x; thread t { x := 1; }"))
            .unwrap();
        assert_eq!(narrow.meta().engine, Engine::Sequential);
        // Explicit engine choices are never rewritten (fresh program so
        // the answer is computed, not served from the cache — a cached
        // report always carries the engine that computed it).
        let explicit = session
            .run(
                CheckRequest::program("vars a b; thread t1 { a := 1; } thread t2 { b := 1; }")
                    .engine(Engine::Parallel { workers: 7 }),
            )
            .unwrap();
        assert_eq!(explicit.meta().engine, Engine::Parallel { workers: 7 });
        // And the SB request re-issued with an explicit engine is a
        // cache hit carrying the original computing engine.
        let hit = session
            .run(CheckRequest::program(SB).engine(Engine::Parallel { workers: 7 }))
            .unwrap();
        assert!(hit.cache_hit());
        assert_eq!(hit.meta().engine, Engine::Parallel { workers: 3 });
    }

    #[test]
    fn reduced_jobs_are_never_threshold_upgraded() {
        // A wide job carrying a reduction must stay sequential: the
        // parallel engine cannot host a reduction, and upgrading would
        // change what the caller asked for.
        let session = Session::new(SessionConfig::default().workers(3).parallel_threshold(2));
        for reduction in [Reduction::SleepSet, Reduction::SourceSet] {
            let report = session
                .run(CheckRequest::program(SB).reduction(reduction))
                .unwrap();
            assert_eq!(report.meta().engine, Engine::Sequential, "{reduction:?}");
            assert_eq!(report.meta().reduction, reduction);
        }
    }

    #[test]
    fn finals_only_answers_never_serve_exhaustive_requests() {
        let session = Session::default();
        let src = session
            .run(CheckRequest::program(SB).reduction(Reduction::SourceSet))
            .unwrap();
        assert!(!src.cache_hit());
        // The exhaustive request must recompute: the cached source-set
        // report carries intentionally smaller state counts.
        let seq = session.run(CheckRequest::program(SB)).unwrap();
        assert!(!seq.cache_hit(), "contract must separate the keys");
        assert!(seq.stats().unique > src.stats().unique);
        // Within one contract, engine differences still coalesce: the
        // sleep-set spelling is exhaustive and hits the sequential entry.
        let dpor = session
            .run(CheckRequest::program(SB).reduction(Reduction::SleepSet))
            .unwrap();
        assert!(dpor.cache_hit(), "exhaustive contract is engine-agnostic");
        // Re-running source-set hits its own entry.
        let warm = session
            .run(CheckRequest::program(SB).reduction(Reduction::SourceSet))
            .unwrap();
        assert!(warm.cache_hit());
        let stats = session.stats();
        assert_eq!(stats.explorations, 2);
        assert_eq!(stats.explorations_none, 1);
        assert_eq!(stats.explorations_sleep_set, 0);
        assert_eq!(stats.explorations_source_set, 1);
    }

    #[test]
    fn cache_disabled_recomputes() {
        let session = Session::new(SessionConfig::default().cache(false));
        assert!(!session.run(CheckRequest::program(SB)).unwrap().cache_hit());
        assert!(!session.run(CheckRequest::program(SB)).unwrap().cache_hit());
        assert_eq!(session.stats().explorations, 2);
    }

    #[test]
    fn panicking_job_neither_kills_the_pool_nor_strands_its_cache_slot() {
        let session = Session::new(SessionConfig::default().workers(1));
        let boom = Invariant::new("boom", |_v| panic!("predicate exploded"));
        let id = session
            .submit(CheckRequest::program(SB).mode(Mode::Invariant(boom.clone())))
            .unwrap();
        // The panic surfaces as a session error instead of hanging wait().
        let err = session.wait(id);
        assert!(
            matches!(&err, Err(CheckError::Session(e)) if e.contains("panicked")),
            "{err:?}"
        );
        // The worker survived: the pool still serves jobs…
        let ok = session.submit(CheckRequest::program(SB)).unwrap();
        assert!(session.wait(ok).unwrap().stats().finals > 0);
        // …and the poisoned key was evicted, so resubmitting the same
        // invariant recomputes (and panics again) rather than waiting
        // forever on a stranded Pending slot.
        let again = session
            .submit(CheckRequest::program(SB).mode(Mode::Invariant(boom)))
            .unwrap();
        assert!(matches!(session.wait(again), Err(CheckError::Session(_))));
    }

    #[test]
    fn concurrent_identical_submissions_coalesce() {
        // 8 identical jobs over 4 workers: exactly one exploration, the
        // other seven coalesce on the pending slot or hit the cache.
        let session = Session::new(SessionConfig::default().workers(4));
        let ids: Vec<JobId> = (0..8)
            .map(|_| session.submit(CheckRequest::program(SB)).unwrap())
            .collect();
        let mut hits = 0;
        for id in ids {
            hits += usize::from(session.wait(id).unwrap().cache_hit());
        }
        assert_eq!(session.stats().explorations, 1);
        assert_eq!(hits, 7);
    }

    #[test]
    fn expired_deadline_yields_a_timed_out_report_not_an_error() {
        let session = Session::default();
        let report = session
            .run(CheckRequest::program(SB).timeout(std::time::Duration::ZERO))
            .unwrap();
        assert_eq!(report.status_str(), "timed_out");
        assert!(
            !report.stats().truncated,
            "interrupt is not bound truncation"
        );
        // Interrupted reports never persist: re-running with a generous
        // deadline recomputes and completes.
        let again = session
            .run(CheckRequest::program(SB).timeout(std::time::Duration::from_secs(60)))
            .unwrap();
        assert_eq!(again.status_str(), "ok");
        assert!(!again.cache_hit());
    }

    #[test]
    fn timeouts_are_part_of_the_cache_key() {
        let session = Session::default();
        let patient = session.run(CheckRequest::program(SB)).unwrap();
        assert_eq!(patient.status_str(), "ok");
        // A deadline-bearing request must not be answered by the
        // unbudgeted report (different question to the service).
        let budgeted = session
            .run(CheckRequest::program(SB).timeout(std::time::Duration::from_secs(60)))
            .unwrap();
        assert!(!budgeted.cache_hit());
        assert_eq!(session.stats().explorations, 2);
    }

    #[test]
    fn cancel_reaches_queued_and_running_jobs() {
        // One worker, first job slow: the second job is cancelled while
        // still queued and must come back "cancelled" without running.
        let session = Session::new(SessionConfig::default().workers(1));
        let drag = Invariant::new("drag", |_v| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            true
        });
        let slow = session
            .submit(CheckRequest::program(SB).mode(Mode::Invariant(drag)))
            .unwrap();
        let doomed = session.submit(CheckRequest::program(SB)).unwrap();
        assert!(session.cancel(doomed), "job still in flight");
        let report = session.wait(doomed).unwrap();
        assert_eq!(report.status_str(), "cancelled");
        let slow = session.wait(slow).unwrap();
        assert_eq!(slow.status_str(), "ok");
        // Finished jobs can no longer be cancelled.
        assert!(!session.cancel(doomed));
    }

    #[test]
    fn cache_capacity_is_a_hard_ceiling_with_lru_eviction() {
        let session = Session::new(SessionConfig::default().cache_capacity(2));
        let program = |n: usize| format!("vars x; thread t {{ x := {n}; }}");
        for n in 1..=5 {
            session.run(CheckRequest::program(program(n))).unwrap();
            assert!(session.cache_len() <= 2, "capacity exceeded at n={n}");
        }
        assert_eq!(session.stats().evictions, 3);
        // Keys 4 and 5 survived; 4 is warm, 1 was evicted and recomputes.
        assert!(session
            .run(CheckRequest::program(program(4)))
            .unwrap()
            .cache_hit());
        assert!(!session
            .run(CheckRequest::program(program(1)))
            .unwrap()
            .cache_hit());
    }

    #[test]
    fn warm_hits_refresh_lru_recency() {
        let session = Session::new(SessionConfig::default().cache_capacity(2));
        let program = |n: usize| format!("vars x; thread t {{ x := {n}; }}");
        session.run(CheckRequest::program(program(1))).unwrap();
        session.run(CheckRequest::program(program(2))).unwrap();
        // Touch 1 so 2 becomes the LRU victim when 3 arrives.
        assert!(session
            .run(CheckRequest::program(program(1)))
            .unwrap()
            .cache_hit());
        session.run(CheckRequest::program(program(3))).unwrap();
        assert!(session
            .run(CheckRequest::program(program(1)))
            .unwrap()
            .cache_hit());
        assert!(!session
            .run(CheckRequest::program(program(2)))
            .unwrap()
            .cache_hit());
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let session = Session::new(SessionConfig::default().workers(1).max_queue_depth(1));
        // Stall the single worker long enough to observe a full queue.
        let gate = Invariant::new("gate", |_v| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            true
        });
        let slow = session
            .submit(CheckRequest::program(SB).mode(Mode::Invariant(gate)))
            .unwrap();
        // Fill the queue past its depth; at least one submission must be
        // rejected (the worker may drain at most one slot meanwhile).
        let mut accepted = Vec::new();
        let mut rejected = 0;
        for _ in 0..8 {
            match session.submit(CheckRequest::program(SB)) {
                Ok(id) => accepted.push(id),
                Err(CheckError::Overloaded) => rejected += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected > 0, "queue depth 1 must reject an 8-burst");
        assert_eq!(session.stats().overloaded, rejected);
        // Accepted jobs still complete normally.
        assert!(session.wait(slow).is_ok());
        for id in accepted {
            session.wait(id).unwrap();
        }
    }
}
