//! Disk persistence for the [`Session`](crate::Session) result cache.
//!
//! A snapshot is JSONL: one line per ready cache slot, each a
//! self-contained document
//!
//! ```text
//! {"v":"c11check/v1","key":{…the cache key…},"report":{…the report…}}
//! ```
//!
//! The `"v"` component is the **schema version** — the same string every
//! cache key carries in memory ([`SCHEMA_VERSION`]) — so a snapshot
//! written by a binary speaking a different report schema is rejected
//! wholesale on load rather than answering requests with stale-format
//! reports. Loading is corruption-tolerant: a line that fails to parse,
//! carries the wrong version, or does not round-trip byte-identically is
//! skipped and counted
//! ([`SessionStats::persist_skipped`](crate::SessionStats)), never
//! trusted.
//!
//! What is persistable is exactly what is *provably* re-serveable:
//! complete (`"status":"ok"`) Outcomes / Count / Litmus reports.
//! Interrupted reports are never written (the in-memory cache does not
//! keep them either), and [`Mode::Invariant`](crate::Mode) keys are
//! skipped — their identity is the predicate's `Arc` pointer, which
//! does not survive a process.

use crate::json::Json;
use crate::session::{CacheKey, Contract, ModeKey};
use crate::{
    Bounds, CheckReport, CountReport, Engine, LitmusVerdictReport, Meta, ModelChoice, OutcomeRow,
    OutcomesReport, Reduction,
};
use c11_explore::{Stats, StoreKind, StoreStats};
use c11_lang::{RegId, Val};
use c11_litmus::Verdict;

/// The cache schema version: the `c11check/v1` report schema. Part of
/// every in-memory [`CacheKey`] and the `"v"` field of every snapshot
/// line; bump it when the report JSON changes shape and old snapshots
/// become self-invalidating.
pub(crate) const SCHEMA_VERSION: &str = "c11check/v1";

/// Encodes one ready cache slot as a snapshot line (no trailing
/// newline). `None` when the entry is not persistable: interrupted
/// reports and predicate-keyed invariant entries.
pub(crate) fn persist_line(key: &CacheKey, report: &CheckReport) -> Option<String> {
    if report.interrupt().is_some() || matches!(key.mode, ModeKey::Invariant(_)) {
        return None;
    }
    // Normalise the hit flag so a snapshot is deterministic no matter
    // how often the entry was served before the flush.
    let mut report = report.clone();
    report.set_cache_hit(false);
    Some(
        Json::obj(vec![
            ("v", Json::str(SCHEMA_VERSION)),
            ("key", key_json(key)),
            ("report", report.json_value()),
        ])
        .render(),
    )
}

/// Decodes one snapshot line back into a cache entry. Errors on any
/// corruption: malformed JSON, a schema-version mismatch, an
/// un-parseable key or report, a key/report mode disagreement, or a
/// report that does not re-render byte-identically (the round-trip
/// integrity check — a loaded entry must answer future requests with
/// exactly the bytes the original computation produced).
pub(crate) fn parse_line(line: &str) -> Result<(CacheKey, CheckReport), String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    match v.get("v").and_then(Json::as_str) {
        Some(SCHEMA_VERSION) => {}
        Some(other) => {
            return Err(format!(
                "schema version mismatch: snapshot is {other:?}, this binary speaks {SCHEMA_VERSION:?}"
            ));
        }
        None => return Err("missing schema version field \"v\"".to_string()),
    }
    let key = key_from_json(v.get("key").ok_or("missing \"key\"")?)?;
    let report_json = v.get("report").ok_or("missing \"report\"")?;
    let report = report_from_json(report_json)?;
    if report.json_value() != *report_json {
        return Err("report does not round-trip byte-identically".to_string());
    }
    let mode_matches = matches!(
        (&key.mode, &report),
        (ModeKey::Outcomes, CheckReport::Outcomes(_))
            | (ModeKey::CountOnly, CheckReport::Count(_))
            | (ModeKey::LitmusVerdict, CheckReport::Litmus(_))
    );
    if !mode_matches {
        return Err(format!(
            "key mode disagrees with report mode {:?}",
            report.mode_str()
        ));
    }
    Ok((key, report))
}

fn key_json(key: &CacheKey) -> Json {
    let mode = match key.mode {
        ModeKey::Outcomes => "outcomes",
        ModeKey::CountOnly => "count",
        ModeKey::LitmusVerdict => "litmus",
        ModeKey::Invariant(_) => unreachable!("persist_line filters invariant keys"),
    };
    let mut pairs = vec![
        ("fingerprint", Json::UInt(key.fingerprint)),
        ("model", Json::str(key.model.as_str())),
        (
            "bounds",
            Json::obj(vec![
                ("max_events", Json::from(key.bounds.max_events)),
                ("max_states", Json::from(key.bounds.max_states)),
                ("max_depth", Json::from(key.bounds.max_depth)),
                ("store", Json::str(key.bounds.store.name())),
                ("symmetry", Json::from(key.bounds.symmetry)),
            ]),
        ),
        ("mode", Json::str(mode)),
        (
            "traces",
            match key.traces {
                None => Json::Null,
                Some(b) => Json::Bool(b),
            },
        ),
        ("dot", Json::from(key.dot)),
        (
            "timeout_ms",
            match key.timeout_ms {
                None => Json::Null,
                Some(ms) => Json::UInt(ms),
            },
        ),
    ];
    // Exhaustive keys omit the component (absent means exhaustive on
    // load), keeping pre-reduction snapshots readable and
    // reduction-free snapshots byte-stable.
    if key.contract == Contract::FinalsOnly {
        pairs.push(("contract", Json::str("finals-only")));
    }
    Json::obj(pairs)
}

fn key_from_json(v: &Json) -> Result<CacheKey, String> {
    let fingerprint = v
        .get("fingerprint")
        .and_then(Json::as_u128)
        .ok_or("key needs an integer \"fingerprint\"")?;
    let model = model_from_str(
        v.get("model")
            .and_then(Json::as_str)
            .ok_or("key needs a string \"model\"")?,
    )?;
    let bounds = v.get("bounds").ok_or("key needs \"bounds\"")?;
    let bound = |name: &str| {
        bounds
            .get(name)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("key bounds need integer {name:?}"))
    };
    // Snapshots written before the storage subsystem lack the store and
    // symmetry components; absent means the old (default) behaviour.
    let store = match bounds.get("store") {
        None => StoreKind::Flat,
        Some(s) => s
            .as_str()
            .and_then(StoreKind::parse)
            .ok_or("key bounds \"store\" must name a store kind")?,
    };
    let symmetry = match bounds.get("symmetry") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err("key bounds \"symmetry\" must be a boolean".to_string()),
    };
    let bounds = Bounds {
        max_events: bound("max_events")?,
        max_states: bound("max_states")?,
        max_depth: bound("max_depth")?,
        store,
        symmetry,
    };
    let mode = match v.get("mode").and_then(Json::as_str) {
        Some("outcomes") => ModeKey::Outcomes,
        Some("count") => ModeKey::CountOnly,
        Some("litmus") => ModeKey::LitmusVerdict,
        _ => return Err("key \"mode\" must be \"outcomes\", \"count\" or \"litmus\"".to_string()),
    };
    let traces = match v.get("traces") {
        None | Some(Json::Null) => None,
        Some(Json::Bool(b)) => Some(*b),
        Some(_) => return Err("key \"traces\" must be a boolean or null".to_string()),
    };
    let dot = v
        .get("dot")
        .and_then(Json::as_usize)
        .ok_or("key needs an integer \"dot\"")?;
    let timeout_ms = match v.get("timeout_ms") {
        None | Some(Json::Null) => None,
        Some(Json::UInt(ms)) => Some(*ms),
        Some(_) => return Err("key \"timeout_ms\" must be an integer or null".to_string()),
    };
    let contract = match v.get("contract") {
        None => Contract::Exhaustive,
        Some(c) => match c.as_str() {
            Some("exhaustive") => Contract::Exhaustive,
            Some("finals-only") => Contract::FinalsOnly,
            _ => {
                return Err(
                    "key \"contract\" must be \"exhaustive\" or \"finals-only\"".to_string()
                );
            }
        },
    };
    Ok(CacheKey {
        schema: SCHEMA_VERSION,
        fingerprint,
        model,
        bounds,
        mode,
        traces,
        dot,
        contract,
        timeout_ms,
    })
}

fn model_from_str(s: &str) -> Result<ModelChoice, String> {
    match s {
        "ra" => Ok(ModelChoice::Ra),
        "sc" => Ok(ModelChoice::Sc),
        "pre-execution" => Ok(ModelChoice::PreExecution),
        other => Err(format!("unknown model {other:?}")),
    }
}

fn engine_from_json(v: &Json) -> Result<Engine, String> {
    match v.get("kind").and_then(Json::as_str) {
        Some("sequential") => Ok(Engine::Sequential),
        Some("parallel") => Ok(Engine::Parallel {
            workers: v
                .get("workers")
                .and_then(Json::as_usize)
                .ok_or("parallel backend needs integer \"workers\"")?,
        }),
        _ => Err("unknown backend kind".to_string()),
    }
}

/// The report's optional `"reduction"` block; absent means none.
fn reduction_from_json(v: Option<&Json>) -> Result<Reduction, String> {
    let Some(v) = v else {
        return Ok(Reduction::None);
    };
    let reduction = match v.get("kind").and_then(Json::as_str) {
        Some("sleep-set") => Reduction::SleepSet,
        Some("source-set") => Reduction::SourceSet,
        _ => return Err("unknown reduction kind".to_string()),
    };
    // The contract is derived, but a snapshot asserting the wrong one
    // is corrupt, not trusted.
    match v.get("contract").and_then(Json::as_str) {
        Some(c) if c == reduction.contract_str() => Ok(reduction),
        _ => Err("reduction \"contract\" disagrees with its kind".to_string()),
    }
}

fn stats_from_json(v: &Json) -> Result<Stats, String> {
    if v.get("interrupt").is_some() {
        // Double safety net: persist_line refuses interrupted reports,
        // and a hand-edited snapshot can't smuggle one back in.
        return Err("interrupted stats are not persistable".to_string());
    }
    let n = |name: &str| {
        v.get(name)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("stats need integer {name:?}"))
    };
    let store = match v.get("store") {
        None => None,
        Some(st) => {
            let sn = |name: &str| {
                st.get(name)
                    .and_then(Json::as_usize)
                    .ok_or_else(|| format!("store stats need integer {name:?}"))
            };
            Some(StoreStats {
                kind: st
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(StoreKind::parse)
                    .ok_or("store stats need a \"kind\" naming a store")?,
                sym: st
                    .get("symmetry")
                    .and_then(Json::as_bool)
                    .ok_or("store stats need boolean \"symmetry\"")?,
                bytes_resident: sn("bytes_resident")?,
                nodes: sn("nodes")?,
                dedup_hits: sn("dedup_hits")?,
            })
        }
    };
    Ok(Stats {
        unique: n("unique")?,
        generated: n("generated")?,
        finals: n("finals")?,
        truncated: v
            .get("truncated")
            .and_then(Json::as_bool)
            .ok_or("stats need boolean \"truncated\"")?,
        stuck: n("stuck")?,
        wall_micros: v
            .get("wall_micros")
            .and_then(Json::as_u128)
            .ok_or("stats need integer \"wall_micros\"")?,
        interrupt: None,
        store,
    })
}

fn verdict_from_str(s: &str) -> Result<Verdict, String> {
    match s {
        "allowed" => Ok(Verdict::Allowed),
        "forbidden" => Ok(Verdict::Forbidden),
        other => Err(format!("unknown verdict {other:?}")),
    }
}

fn string_field<'a>(v: &'a Json, name: &str) -> Result<&'a str, String> {
    v.get(name)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("report needs string {name:?}"))
}

fn bool_field(v: &Json, name: &str) -> Result<bool, String> {
    v.get(name)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("report needs boolean {name:?}"))
}

fn string_arr(v: &Json) -> Result<Vec<String>, String> {
    v.as_arr()
        .ok_or("expected an array of strings")?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or("non-string element".to_string())
        })
        .collect()
}

fn outcome_row_from_json(v: &Json) -> Result<OutcomeRow, String> {
    let count = v
        .get("count")
        .and_then(Json::as_usize)
        .ok_or("outcome row needs integer \"count\"")?;
    let mut threads = Vec::new();
    for (i, t) in v
        .get("threads")
        .and_then(Json::as_arr)
        .ok_or("outcome row needs \"threads\"")?
        .iter()
        .enumerate()
    {
        if t.get("thread").and_then(Json::as_usize) != Some(i + 1) {
            return Err(format!("thread entry {i} mislabelled"));
        }
        let mut regs: Vec<(RegId, Val)> = Vec::new();
        for (name, value) in t
            .get("regs")
            .and_then(Json::as_obj)
            .ok_or("thread entry needs \"regs\"")?
        {
            let id: u8 = name
                .strip_prefix('r')
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("bad register name {name:?}"))?;
            let val: Val = value
                .as_u128()
                .and_then(|n| Val::try_from(n).ok())
                .ok_or_else(|| format!("bad register value for {name:?}"))?;
            regs.push((RegId(id), val));
        }
        threads.push(regs);
    }
    let witness = match v.get("witness") {
        None => None,
        Some(w) => Some(string_arr(w)?),
    };
    Ok(OutcomeRow {
        count,
        threads,
        witness,
    })
}

fn report_from_json(v: &Json) -> Result<CheckReport, String> {
    if string_field(v, "schema")? != SCHEMA_VERSION {
        return Err("report schema mismatch".to_string());
    }
    if string_field(v, "status")? != "ok" {
        return Err("only \"ok\" reports are persistable".to_string());
    }
    if bool_field(v, "cache_hit")? {
        return Err("persisted reports must carry cache_hit:false".to_string());
    }
    let stats_of = |name: &str| {
        stats_from_json(
            v.get(name)
                .ok_or_else(|| format!("report needs {name:?}"))?,
        )
    };
    let engine = engine_from_json(v.get("backend").ok_or("report needs \"backend\"")?)?;
    let reduction = reduction_from_json(v.get("reduction"))?;
    match string_field(v, "mode")? {
        "count" => Ok(CheckReport::Count(CountReport {
            meta: Meta {
                model: model_from_str(string_field(v, "model")?)?,
                engine,
                reduction,
                cache_hit: false,
            },
            stats: stats_of("stats")?,
        })),
        "outcomes" => {
            let outcomes = v
                .get("outcomes")
                .and_then(Json::as_arr)
                .ok_or("report needs \"outcomes\"")?
                .iter()
                .map(outcome_row_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            let dot = match v.get("dot") {
                None => Vec::new(),
                Some(d) => string_arr(d)?,
            };
            Ok(CheckReport::Outcomes(OutcomesReport {
                meta: Meta {
                    model: model_from_str(string_field(v, "model")?)?,
                    engine,
                    reduction,
                    cache_hit: false,
                },
                stats: stats_of("stats")?,
                outcomes,
                invalid_finals: v
                    .get("invalid_finals")
                    .and_then(Json::as_usize)
                    .ok_or("report needs integer \"invalid_finals\"")?,
                dot,
            }))
        }
        "litmus" => Ok(CheckReport::Litmus(LitmusVerdictReport {
            // Litmus reports omit "model" (the mode always contrasts RA
            // vs SC); the cache key normalises it to the default too.
            meta: Meta {
                model: ModelChoice::default(),
                engine,
                reduction,
                cache_hit: false,
            },
            name: string_field(v, "name")?.to_string(),
            expect_ra: verdict_from_str(string_field(v, "expect_ra")?)?,
            expect_sc: verdict_from_str(string_field(v, "expect_sc")?)?,
            observed_ra: bool_field(v, "observed_ra")?,
            observed_sc: bool_field(v, "observed_sc")?,
            ra: stats_of("ra")?,
            sc: stats_of("sc")?,
            pass: bool_field(v, "pass")?,
        })),
        other => Err(format!("mode {other:?} is not persistable")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckRequest, Invariant, Mode};
    use c11_explore::Budget;

    const SB: &str = "vars x y;
         thread t1 { x := 1; r0 <- y; }
         thread t2 { y := 1; r0 <- x; }";

    fn entry(req: CheckRequest) -> (CacheKey, CheckReport) {
        let resolved = req.resolve().unwrap();
        let key = CacheKey::of(&resolved);
        let report = resolved.compute(&Budget::unlimited());
        (key, report)
    }

    #[test]
    fn program_reports_round_trip_byte_identically() {
        for req in [
            CheckRequest::program(SB),
            CheckRequest::program(SB).mode(Mode::CountOnly),
            CheckRequest::program(SB).traces(true).dot(1),
            CheckRequest::program(SB).model(ModelChoice::Sc),
            CheckRequest::program(SB).timeout(std::time::Duration::from_secs(600)),
            CheckRequest::program(SB).reduction(Reduction::SleepSet),
            CheckRequest::program(SB).reduction(Reduction::SourceSet),
        ] {
            let (key, report) = entry(req);
            let line = persist_line(&key, &report).expect("complete report persists");
            let (key2, report2) = parse_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert!(key == key2, "key survives the round trip");
            assert_eq!(report2.to_json(), report.to_json());
        }
    }

    #[test]
    fn litmus_reports_round_trip() {
        let test = c11_litmus::corpus().remove(0);
        let (key, report) = entry(CheckRequest::litmus(test));
        let line = persist_line(&key, &report).unwrap();
        let (key2, report2) = parse_line(&line).unwrap();
        assert!(key == key2);
        assert_eq!(report2.to_json(), report.to_json());
    }

    #[test]
    fn interrupted_and_invariant_entries_never_persist() {
        let (key, report) = entry(CheckRequest::program(SB).timeout(std::time::Duration::ZERO));
        assert_eq!(report.status_str(), "timed_out");
        assert_eq!(persist_line(&key, &report), None);
        let inv = Invariant::new("p", |_v| true);
        let (key, report) = entry(CheckRequest::program(SB).mode(Mode::Invariant(inv)));
        assert_eq!(persist_line(&key, &report), None);
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let (key, report) = entry(CheckRequest::program(SB));
        let line = persist_line(&key, &report).unwrap();
        let stale = line.replace("c11check/v1", "c11check/v0");
        let err = parse_line(&stale).unwrap_err();
        assert!(err.contains("schema version mismatch"), "{err}");
    }

    #[test]
    fn corrupt_lines_are_rejected_not_trusted() {
        let (key, report) = entry(CheckRequest::program(SB));
        let line = persist_line(&key, &report).unwrap();
        // Truncation, non-JSON, missing parts.
        for bad in [
            &line[..line.len() / 2],
            "not json at all",
            "{}",
            r#"{"v":"c11check/v1"}"#,
            r#"{"v":"c11check/v1","key":{},"report":{}}"#,
        ] {
            assert!(parse_line(bad).is_err(), "{bad:?}");
        }
        // Structural junk inside the report (an unknown field) fails the
        // re-render integrity check even though every known field parses.
        let padded = line.replace("\"invalid_finals\"", "\"junk\":0,\"invalid_finals\"");
        let err = parse_line(&padded).unwrap_err();
        assert!(err.contains("round-trip"), "{err}");
        // A smuggled cache_hit:true is refused.
        let hit = line.replace("\"cache_hit\":false", "\"cache_hit\":true");
        assert!(parse_line(&hit).is_err());
    }

    #[test]
    fn key_report_mode_disagreement_is_rejected() {
        let (key, report) = entry(CheckRequest::program(SB));
        let line = persist_line(&key, &report).unwrap();
        // Flip the key's mode word only (the report stays "outcomes").
        let crossed = line.replacen("\"mode\":\"outcomes\"", "\"mode\":\"count\"", 1);
        let err = parse_line(&crossed).unwrap_err();
        assert!(err.contains("disagrees"), "{err}");
    }
}
