//! `c11-store` — visited-state storage for the exploration engines.
//!
//! Every engine deduplicates on 128-bit canonical state fingerprints.
//! Where those fingerprints *live* used to be hard-wired as a flat
//! `HashSet<u128>` per engine; this crate owns that decision behind the
//! [`VisitedStore`] trait, with three implementations:
//!
//! * [`FlatStore`] — the extracted flat fingerprint set (the default;
//!   byte-for-byte the behaviour every engine had before this crate).
//! * [`SymmetryStore`] — the storage half of thread-symmetry
//!   quotienting. The quotient itself lives in the *key*: the engines
//!   canonicalise the thread order before fingerprinting (see
//!   `c11_explore::sym`), so orbit-equivalent states collapse to one
//!   entry. This store is the flat set re-labelled to report
//!   `kind = "sym"` in its stats — keeping key computation out of the
//!   store keeps the store model-agnostic.
//! * [`SharedStore`] — a hash-consed radix structure over fingerprint
//!   chunks: an extendible directory indexed by the key's top bits whose
//!   slots share arena-allocated sorted pages until a split
//!   differentiates them (the node-sharing that makes the directory
//!   cheap), with exact byte accounting.
//!
//! All three report [`StoreStats`] — resident bytes, node and
//! dedup-hit counters — surfaced through the explore crate's `Stats`
//! and the `c11check/v1` JSON `"store"` block.
//!
//! The [`concurrent`] module hosts the striped concurrent forms the
//! parallel engine uses (the lock-free CAS-claim filter for flat/sym
//! keys, striped mutexes over [`SharedStore`] pages for the shared
//! kind).

pub mod concurrent;

use std::collections::HashSet;

/// Which visited-store implementation a run uses. The engines thread
/// this through `ExploreConfig`; services accept it as
/// `--store flat|sym|shared`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// The flat fingerprint `HashSet` (the reference behaviour).
    #[default]
    Flat,
    /// Flat storage with thread-symmetry-canonicalised keys: visited
    /// counts shrink by the thread-permutation orbit on symmetric
    /// programs. Opt-in — `unique`/`generated` legitimately differ from
    /// the flat run; verdicts and canonicalised outcomes do not.
    Sym,
    /// The hash-consed paged store with exact memory accounting.
    Shared,
}

impl StoreKind {
    /// Every kind, in CLI order.
    pub const ALL: [StoreKind; 3] = [StoreKind::Flat, StoreKind::Sym, StoreKind::Shared];

    /// The CLI / JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            StoreKind::Flat => "flat",
            StoreKind::Sym => "sym",
            StoreKind::Shared => "shared",
        }
    }

    /// Parses a CLI / JSON name.
    pub fn parse(s: &str) -> Option<StoreKind> {
        match s {
            "flat" => Some(StoreKind::Flat),
            "sym" => Some(StoreKind::Sym),
            "shared" => Some(StoreKind::Shared),
            _ => None,
        }
    }
}

/// Memory and dedup accounting a store reports after a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct StoreStats {
    /// Which implementation produced these numbers.
    pub kind: StoreKind,
    /// Were keys symmetry-canonicalised? (True for [`StoreKind::Sym`],
    /// and for any kind when the explicit `symmetry` knob was on.)
    pub sym: bool,
    /// Exact bytes resident in the store's own structures (directory,
    /// pages, buckets) — not including the transient key being probed.
    pub bytes_resident: usize,
    /// Interior nodes (arena pages for [`SharedStore`]; 0 for the flat
    /// set, whose table is one allocation).
    pub nodes: usize,
    /// Inserts that found their key already present.
    pub dedup_hits: usize,
}

/// The visited-set contract every engine deduplicates through.
pub trait VisitedStore {
    /// Inserts a fingerprint; `true` iff it was absent. This is the
    /// engines' linearization point of state discovery.
    fn insert(&mut self, key: u128) -> bool;

    /// Membership without insertion.
    fn contains(&self, key: u128) -> bool;

    /// Number of distinct keys stored.
    fn len(&self) -> usize;

    /// `true` iff no key is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The store's accounting snapshot.
    fn stats(&self) -> StoreStats;
}

// ---- FlatStore ----------------------------------------------------------

/// The flat fingerprint set — `HashSet<u128>` extracted from the
/// engines, kept as the default store.
#[derive(Debug, Default)]
pub struct FlatStore {
    set: HashSet<u128>,
    dedup_hits: usize,
}

impl FlatStore {
    /// An empty store.
    pub fn new() -> FlatStore {
        FlatStore::default()
    }

    /// Resident bytes of the underlying table. `HashSet` keeps
    /// `buckets = next_pow2(capacity · 8/7)` slots of 16 key bytes plus
    /// one control byte each; `capacity()` is the usable 7/8 fraction,
    /// so the bucket count is recovered exactly.
    fn table_bytes(&self) -> usize {
        let cap = self.set.capacity();
        if cap == 0 {
            return std::mem::size_of::<Self>();
        }
        let buckets = (cap * 8 / 7).next_power_of_two();
        std::mem::size_of::<Self>() + buckets * (std::mem::size_of::<u128>() + 1)
    }
}

impl VisitedStore for FlatStore {
    fn insert(&mut self, key: u128) -> bool {
        let fresh = self.set.insert(key);
        if !fresh {
            self.dedup_hits += 1;
        }
        fresh
    }

    fn contains(&self, key: u128) -> bool {
        self.set.contains(&key)
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            kind: StoreKind::Flat,
            sym: false,
            bytes_resident: self.table_bytes(),
            nodes: 0,
            dedup_hits: self.dedup_hits,
        }
    }
}

// ---- SymmetryStore ------------------------------------------------------

/// Flat storage for symmetry-canonicalised keys. The canonicalisation
/// (minimum fingerprint over the thread-permutation orbit) happens in
/// the engines' key function — see `c11_explore::sym` — so this store
/// only differs from [`FlatStore`] in the stats it reports.
#[derive(Debug, Default)]
pub struct SymmetryStore {
    inner: FlatStore,
}

impl SymmetryStore {
    /// An empty store.
    pub fn new() -> SymmetryStore {
        SymmetryStore::default()
    }
}

impl VisitedStore for SymmetryStore {
    fn insert(&mut self, key: u128) -> bool {
        self.inner.insert(key)
    }

    fn contains(&self, key: u128) -> bool {
        self.inner.contains(key)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            kind: StoreKind::Sym,
            sym: true,
            ..self.inner.stats()
        }
    }
}

// ---- SharedStore --------------------------------------------------------

/// Split threshold for a page. Small enough that a split's two halves
/// plus slack stay cache-friendly; large enough that the directory stays
/// a few percent of the data.
const PAGE_CAP: usize = 32;

/// Page growth slab: key capacity is reserved in steps of this many
/// entries, keeping the worst-case fill ≥ `(PAGE_CAP/2) / (PAGE_CAP/2 +
/// PAGE_SLAB)` instead of the ×2 doubling a plain `Vec` would do.
const PAGE_SLAB: usize = 4;

/// One arena page: a sorted run of full fingerprints plus the number of
/// directory bits that routed keys here. Pages with `local_depth` below
/// the directory's global depth are *shared* by several directory slots
/// — the hash-consing that keeps a freshly doubled directory free.
#[derive(Debug)]
struct Page {
    local_depth: u32,
    keys: Vec<u128>,
}

impl Page {
    fn bytes(&self) -> usize {
        std::mem::size_of::<Page>() + self.keys.capacity() * std::mem::size_of::<u128>()
    }
}

/// A hash-consed paged store over fingerprint chunks: extendible
/// hashing with an arena of sorted pages.
///
/// The directory is indexed by the key's top `global_depth` bits (the
/// first "chunk" of the fingerprint; fingerprints are uniform, so the
/// chunks are too). Each slot holds an arena page id; a page splits at
/// [`PAGE_CAP`] keys by one more routing bit, doubling the directory
/// only when the splitting page was already at full depth — every other
/// slot keeps *sharing* its old page, so directory doubling is O(slots)
/// pointer copies, not a rehash. Membership is exact (full keys are
/// stored), accounting is exact (`bytes_resident` sums the directory
/// and page allocations), and the tight [`PAGE_SLAB`] growth keeps
/// resident bytes per key below the flat table's bucket overhead.
#[derive(Debug)]
pub struct SharedStore {
    global_depth: u32,
    /// `dir[top_bits(key)]` = arena page id.
    dir: Vec<u32>,
    /// The page arena. Pages are never freed (splits reuse the old page
    /// as one of the two halves), so ids stay stable.
    pages: Vec<Page>,
    len: usize,
    dedup_hits: usize,
}

impl Default for SharedStore {
    fn default() -> SharedStore {
        SharedStore::new()
    }
}

impl SharedStore {
    /// An empty store: one page shared by the whole (depth-0) directory.
    pub fn new() -> SharedStore {
        SharedStore {
            global_depth: 0,
            dir: vec![0],
            pages: vec![Page {
                local_depth: 0,
                keys: Vec::new(),
            }],
            len: 0,
            dedup_hits: 0,
        }
    }

    fn slot_of(&self, key: u128) -> usize {
        if self.global_depth == 0 {
            0
        } else {
            (key >> (128 - self.global_depth)) as usize
        }
    }

    /// Splits the page under `key`'s slot by one routing bit, doubling
    /// the directory first when the page is already at global depth.
    fn split(&mut self, key: u128) {
        let pid = self.dir[self.slot_of(key)] as usize;
        if self.pages[pid].local_depth == self.global_depth {
            // Double the directory; every new slot shares its buddy's page.
            self.global_depth += 1;
            let old = std::mem::take(&mut self.dir);
            self.dir = Vec::with_capacity(old.len() * 2);
            for id in old {
                self.dir.push(id);
                self.dir.push(id);
            }
        }
        let depth = self.pages[pid].local_depth + 1;
        // Partition by the new routing bit (bit `depth` from the top).
        let shift = 128 - depth;
        let old_keys = std::mem::take(&mut self.pages[pid].keys);
        let (zeros, ones): (Vec<u128>, Vec<u128>) =
            old_keys.into_iter().partition(|k| (k >> shift) & 1 == 0);
        self.pages[pid].local_depth = depth;
        self.pages[pid].keys = zeros;
        self.pages[pid].keys.shrink_to_fit();
        let mut ones_page = Page {
            local_depth: depth,
            keys: ones,
        };
        ones_page.keys.shrink_to_fit();
        let new_pid = self.pages.len() as u32;
        self.pages.push(ones_page);
        // Re-route the directory slots whose `depth`-bit prefix now ends
        // in 1 from the old page to the new one.
        let slots_per_page = 1usize << (self.global_depth - depth);
        for (slot, id) in self.dir.iter_mut().enumerate() {
            if *id == pid as u32 && (slot / slots_per_page) & 1 == 1 {
                *id = new_pid;
            }
        }
    }
}

impl VisitedStore for SharedStore {
    fn insert(&mut self, key: u128) -> bool {
        loop {
            let pid = self.dir[self.slot_of(key)] as usize;
            let page = &mut self.pages[pid];
            match page.keys.binary_search(&key) {
                Ok(_) => {
                    self.dedup_hits += 1;
                    return false;
                }
                Err(pos) => {
                    if page.keys.len() >= PAGE_CAP {
                        self.split(key);
                        continue;
                    }
                    if page.keys.len() == page.keys.capacity() {
                        page.keys.reserve_exact(PAGE_SLAB);
                    }
                    page.keys.insert(pos, key);
                    self.len += 1;
                    return true;
                }
            }
        }
    }

    fn contains(&self, key: u128) -> bool {
        let pid = self.dir[self.slot_of(key)] as usize;
        self.pages[pid].keys.binary_search(&key).is_ok()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> StoreStats {
        let bytes = std::mem::size_of::<Self>()
            + self.dir.capacity() * std::mem::size_of::<u32>()
            + self.pages.iter().map(Page::bytes).sum::<usize>();
        StoreStats {
            kind: StoreKind::Shared,
            sym: false,
            bytes_resident: bytes,
            nodes: self.pages.len(),
            dedup_hits: self.dedup_hits,
        }
    }
}

// ---- AnyStore -----------------------------------------------------------

/// A store value dispatching over the three kinds — what the sequential
/// engines hold (the parallel engine goes through
/// [`concurrent::ConcurrentStore`]).
#[derive(Debug)]
pub enum AnyStore {
    /// Flat fingerprint set.
    Flat(FlatStore),
    /// Flat set over symmetry-canonical keys.
    Sym(SymmetryStore),
    /// The paged hash-consed store.
    Shared(SharedStore),
}

impl AnyStore {
    /// An empty store of the given kind.
    pub fn new(kind: StoreKind) -> AnyStore {
        match kind {
            StoreKind::Flat => AnyStore::Flat(FlatStore::new()),
            StoreKind::Sym => AnyStore::Sym(SymmetryStore::new()),
            StoreKind::Shared => AnyStore::Shared(SharedStore::new()),
        }
    }
}

impl VisitedStore for AnyStore {
    fn insert(&mut self, key: u128) -> bool {
        match self {
            AnyStore::Flat(s) => s.insert(key),
            AnyStore::Sym(s) => s.insert(key),
            AnyStore::Shared(s) => s.insert(key),
        }
    }

    fn contains(&self, key: u128) -> bool {
        match self {
            AnyStore::Flat(s) => s.contains(key),
            AnyStore::Sym(s) => s.contains(key),
            AnyStore::Shared(s) => s.contains(key),
        }
    }

    fn len(&self) -> usize {
        match self {
            AnyStore::Flat(s) => VisitedStore::len(s),
            AnyStore::Sym(s) => VisitedStore::len(s),
            AnyStore::Shared(s) => VisitedStore::len(s),
        }
    }

    fn stats(&self) -> StoreStats {
        match self {
            AnyStore::Flat(s) => s.stats(),
            AnyStore::Sym(s) => s.stats(),
            AnyStore::Shared(s) => s.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u128) -> impl Iterator<Item = u128> {
        // A full-period odd-multiplier scramble: distinct, well spread.
        (0..n).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835))
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in StoreKind::ALL {
            assert_eq!(StoreKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(StoreKind::parse("bogus"), None);
        assert_eq!(StoreKind::default(), StoreKind::Flat);
    }

    #[test]
    fn all_stores_agree_on_membership() {
        for kind in StoreKind::ALL {
            let mut s = AnyStore::new(kind);
            assert!(s.is_empty());
            for k in keys(3_000) {
                assert!(s.insert(k), "{kind:?}: first insert fresh");
            }
            for k in keys(3_000) {
                assert!(!s.insert(k), "{kind:?}: second insert dedups");
                assert!(s.contains(k), "{kind:?}: membership");
            }
            assert!(!s.contains(0xdead_beef), "{kind:?}");
            assert_eq!(VisitedStore::len(&s), 3_000, "{kind:?}");
            assert_eq!(s.stats().dedup_hits, 3_000, "{kind:?}");
        }
    }

    #[test]
    fn shared_store_splits_and_shares_pages() {
        let mut s = SharedStore::new();
        for k in keys(10_000) {
            assert!(s.insert(k));
        }
        let stats = s.stats();
        assert!(stats.nodes > 1, "splits must have happened");
        assert_eq!(s.len, 10_000);
        // Every page is reachable and sorted; directory covers all slots.
        assert_eq!(s.dir.len(), 1 << s.global_depth);
        for page in &s.pages {
            assert!(page.keys.windows(2).all(|w| w[0] < w[1]), "sorted pages");
            assert!(page.keys.len() <= PAGE_CAP);
            assert!(page.local_depth <= s.global_depth);
        }
        // Shared slots: a page at depth d below global is pointed to by
        // exactly 2^(global - d) directory slots.
        for (pid, page) in s.pages.iter().enumerate() {
            let refs = s.dir.iter().filter(|&&id| id as usize == pid).count();
            assert_eq!(refs, 1 << (s.global_depth - page.local_depth), "page {pid}");
        }
    }

    #[test]
    fn shared_store_beats_flat_on_resident_bytes() {
        // The acceptance property the bench rows gate: across a wide
        // range of set sizes, the paged store stays under the flat
        // table's power-of-two bucket growth.
        for n in [200u128, 321, 553, 1_000, 5_000, 20_000] {
            let mut flat = FlatStore::new();
            let mut shared = SharedStore::new();
            for k in keys(n) {
                flat.insert(k);
                shared.insert(k);
            }
            let (fb, sb) = (flat.stats().bytes_resident, shared.stats().bytes_resident);
            assert!(sb < fb, "n={n}: shared {sb} B must undercut flat {fb} B");
        }
    }

    #[test]
    fn sym_store_reports_its_kind() {
        let mut s = SymmetryStore::new();
        s.insert(7);
        s.insert(7);
        let stats = s.stats();
        assert_eq!(stats.kind, StoreKind::Sym);
        assert!(stats.sym);
        assert_eq!(stats.dedup_hits, 1);
    }

    #[test]
    fn flat_accounting_tracks_table_growth() {
        let mut s = FlatStore::new();
        let before = s.stats().bytes_resident;
        for k in keys(1_000) {
            s.insert(k);
        }
        let after = s.stats().bytes_resident;
        assert!(after > before);
        // 17 bytes per bucket, buckets within [n·8/7, n·16/7].
        assert!((1_000 * 17..=1_000 * 40).contains(&after), "{after}");
    }
}
