//! Concurrent visited stores for the parallel engine.
//!
//! [`CasFilter`] is the striped lock-free CAS-claim membership filter the
//! parallel engine has used since it went contention-free: inserts are
//! plain CAS races under a shared stripe guard, the per-stripe `RwLock`
//! is only taken exclusively to double a stripe. It serves both the
//! flat and the symmetry store kinds — symmetry lives in the *key* the
//! engine computes, not in the storage.
//!
//! [`ConcurrentStore`] dispatches between that fast path and a striped
//! mutex wrapping of [`SharedStore`] pages for the hash-consed kind,
//! and reports the same [`StoreStats`] as the sequential stores.

use crate::{SharedStore, StoreKind, StoreStats, VisitedStore};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Stripes of the global filter. More stripes than workers keeps the
/// probability of two workers growing the same stripe at once low.
pub const FILTER_SHARDS: usize = 32;

/// Initial slots per stripe (power of two; grows by doubling).
const FILTER_INITIAL_SLOTS: usize = 32;

/// Slot markers. A slot's `lo` word is `EMPTY` (free), `CLAIMED` (an
/// insert won the CAS and is about to publish), or the key's low word.
const SLOT_EMPTY: u64 = 0;
const SLOT_CLAIMED: u64 = 1;

/// Stripe selector: one fixed-seed FNV-1a pass over the 16 key bytes. The
/// key is already a fingerprint, but its low bits feed the slot probing —
/// folding all 128 bits keeps stripe choice independent of it.
pub fn shard_of(key: u128) -> usize {
    let mut fnv: u64 = 0xcbf29ce484222325;
    for b in key.to_le_bytes() {
        fnv ^= b as u64;
        fnv = fnv.wrapping_mul(0x100000001b3);
    }
    (fnv as usize) % FILTER_SHARDS
}

/// Splits a 128-bit fingerprint into the two slot words, steering clear
/// of the reserved `lo` markers. The remap aliases a key with
/// `lo ∈ {0, 1}` onto one with the top bit set — a 2⁻⁶³ event folded
/// into the fingerprinting collision stance (`c11_core::fingerprint`).
fn split_key(key: u128) -> (u64, u64) {
    let mut lo = key as u64;
    let hi = (key >> 64) as u64;
    if lo <= SLOT_CLAIMED {
        lo |= 1 << 63;
    }
    (lo, hi)
}

/// Start slot for probing: a multiply-mix over both words, deliberately
/// different from [`shard_of`] so stripe choice and probe order draw on
/// different bits.
fn slot_start(lo: u64, hi: u64) -> usize {
    ((lo.rotate_left(32) ^ hi).wrapping_mul(0x9e3779b97f4a7c15) >> 11) as usize
}

/// One 128-bit entry, published in two words with a claim protocol:
/// insert CASes `lo` from `EMPTY` to `CLAIMED`, stores `hi`, then
/// release-stores the real `lo`. Readers that load the real `lo`
/// (acquire) therefore see the matching `hi`.
struct Slot {
    lo: AtomicU64,
    hi: AtomicU64,
}

enum Probe {
    /// The key was absent; this call inserted it.
    Fresh,
    /// The key was already present.
    Present,
    /// Probing wrapped without finding the key or a free slot.
    Full,
}

/// An open-addressed table of [`Slot`]s (linear probing). Concurrent
/// inserts are plain CAS races — no lock is held per operation; the
/// enclosing `RwLock` is only taken exclusively to double the table.
struct Table {
    slots: Box<[Slot]>,
    occupied: AtomicUsize,
}

impl Table {
    fn new(capacity: usize) -> Table {
        debug_assert!(capacity.is_power_of_two());
        let slots = (0..capacity)
            .map(|_| Slot {
                lo: AtomicU64::new(SLOT_EMPTY),
                hi: AtomicU64::new(0),
            })
            .collect();
        Table {
            slots,
            occupied: AtomicUsize::new(0),
        }
    }

    /// Lock-free insert-or-find. Runs under a shared (read) guard of the
    /// stripe lock, so growth cannot rip the table out from under it.
    fn probe_insert(&self, lo: u64, hi: u64) -> Probe {
        let mask = self.slots.len() - 1;
        let mut i = slot_start(lo, hi) & mask;
        for _ in 0..self.slots.len() {
            let slot = &self.slots[i];
            let mut cur = slot.lo.load(Ordering::Acquire);
            if cur == SLOT_EMPTY {
                match slot.lo.compare_exchange(
                    SLOT_EMPTY,
                    SLOT_CLAIMED,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        slot.hi.store(hi, Ordering::Release);
                        slot.lo.store(lo, Ordering::Release);
                        self.occupied.fetch_add(1, Ordering::Relaxed);
                        return Probe::Fresh;
                    }
                    Err(seen) => cur = seen,
                }
            }
            // A concurrent claimer is mid-publish: its key might be ours.
            while cur == SLOT_CLAIMED {
                std::hint::spin_loop();
                cur = slot.lo.load(Ordering::Acquire);
            }
            if cur == lo && slot.hi.load(Ordering::Acquire) == hi {
                return Probe::Present;
            }
            i = (i + 1) & mask;
        }
        Probe::Full
    }

    /// Moves every entry into `bigger`. Exclusive access (write guard):
    /// no claims can be in flight, so plain relaxed traffic suffices.
    fn rehash_into(&self, bigger: &Table) {
        let mask = bigger.slots.len() - 1;
        for slot in self.slots.iter() {
            let lo = slot.lo.load(Ordering::Relaxed);
            debug_assert_ne!(lo, SLOT_CLAIMED, "claims cannot survive a write lock");
            if lo == SLOT_EMPTY {
                continue;
            }
            let hi = slot.hi.load(Ordering::Relaxed);
            let mut i = slot_start(lo, hi) & mask;
            loop {
                let s = &bigger.slots[i];
                if s.lo.load(Ordering::Relaxed) == SLOT_EMPTY {
                    s.hi.store(hi, Ordering::Relaxed);
                    s.lo.store(lo, Ordering::Relaxed);
                    break;
                }
                i = (i + 1) & mask;
            }
        }
        bigger
            .occupied
            .store(self.occupied.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Keeps each stripe's lock word on its own cache line so readers of
/// neighbouring stripes don't false-share.
#[repr(align(64))]
pub struct Padded<T>(pub T);

/// The striped lock-free membership filter: `FILTER_SHARDS`
/// independently grown tables. `insert` is the linearization point of
/// state discovery — exactly one worker gets `true` per fingerprint.
pub struct CasFilter {
    shards: Vec<Padded<RwLock<Table>>>,
    dedup_hits: AtomicUsize,
}

impl Default for CasFilter {
    fn default() -> CasFilter {
        CasFilter::new()
    }
}

impl CasFilter {
    /// An empty filter.
    pub fn new() -> CasFilter {
        CasFilter {
            shards: (0..FILTER_SHARDS)
                .map(|_| Padded(RwLock::new(Table::new(FILTER_INITIAL_SLOTS))))
                .collect(),
            dedup_hits: AtomicUsize::new(0),
        }
    }

    /// Inserts the fingerprint; `true` iff it was fresh. The hot path
    /// takes a shared stripe guard and does one CAS; the write lock is
    /// only taken to double a stripe past ¾ load.
    pub fn insert(&self, key: u128) -> bool {
        let (lo, hi) = split_key(key);
        let shard = &self.shards[shard_of(key)].0;
        loop {
            let seen_cap = {
                let table = shard.read();
                // Grow ahead of ¾ load: linear probing degrades sharply
                // past it, and headroom absorbs concurrent overshoot.
                if table.occupied.load(Ordering::Relaxed) * 4 < table.slots.len() * 3 {
                    match table.probe_insert(lo, hi) {
                        Probe::Fresh => return true,
                        Probe::Present => {
                            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                            return false;
                        }
                        Probe::Full => {}
                    }
                }
                table.slots.len()
            };
            grow(shard, seen_cap);
        }
    }

    /// Number of distinct keys stored, summed over stripes. Exact once
    /// concurrent inserts have quiesced.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.0.read().occupied.load(Ordering::Relaxed))
            .sum()
    }

    /// `true` iff no key is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn stats(&self, kind: StoreKind, sym: bool) -> StoreStats {
        let bytes = std::mem::size_of::<Self>()
            + self
                .shards
                .iter()
                .map(|s| s.0.read().slots.len() * std::mem::size_of::<Slot>())
                .sum::<usize>();
        StoreStats {
            kind,
            sym,
            bytes_resident: bytes,
            nodes: 0,
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
        }
    }
}

/// Doubles the stripe unless another worker already did (the capacity
/// check under the write lock decides the race).
fn grow(shard: &RwLock<Table>, seen_cap: usize) {
    let mut guard = shard.write();
    if guard.slots.len() > seen_cap {
        return;
    }
    let bigger = Table::new(guard.slots.len() * 2);
    guard.rehash_into(&bigger);
    *guard = bigger;
}

/// The parallel engine's visited store: the lock-free CAS filter for
/// the flat and symmetry kinds (the CAS-claim fast path is preserved —
/// symmetry changes only the key fed in), or striped mutexes over
/// [`SharedStore`] shards for the hash-consed kind.
pub enum ConcurrentStore {
    /// Lock-free CAS-claim filter (flat or symmetry-keyed).
    Cas { filter: CasFilter, sym: bool },
    /// Striped paged store: `FILTER_SHARDS` independently locked
    /// [`SharedStore`]s, sharded by [`shard_of`].
    Striped(Vec<Padded<Mutex<SharedStore>>>),
}

impl ConcurrentStore {
    /// An empty concurrent store of the given kind. `sym` records
    /// whether the engine feeds symmetry-canonicalised keys (it rides
    /// into the stats; storage is unaffected).
    pub fn new(kind: StoreKind, sym: bool) -> ConcurrentStore {
        match kind {
            StoreKind::Flat | StoreKind::Sym => ConcurrentStore::Cas {
                filter: CasFilter::new(),
                sym: sym || kind == StoreKind::Sym,
            },
            StoreKind::Shared => ConcurrentStore::Striped(
                (0..FILTER_SHARDS)
                    .map(|_| Padded(Mutex::new(SharedStore::new())))
                    .collect(),
            ),
        }
    }

    /// Inserts the fingerprint; `true` iff it was fresh. The
    /// linearization point of state discovery for the parallel engine.
    pub fn insert(&self, key: u128) -> bool {
        match self {
            ConcurrentStore::Cas { filter, .. } => filter.insert(key),
            ConcurrentStore::Striped(shards) => shards[shard_of(key)].0.lock().insert(key),
        }
    }

    /// Number of distinct keys stored. Exact after workers quiesce.
    pub fn len(&self) -> usize {
        match self {
            ConcurrentStore::Cas { filter, .. } => filter.len(),
            ConcurrentStore::Striped(shards) => {
                shards.iter().map(|s| VisitedStore::len(&*s.0.lock())).sum()
            }
        }
    }

    /// `true` iff no key is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The store's accounting snapshot (stripes summed).
    pub fn stats(&self) -> StoreStats {
        match self {
            ConcurrentStore::Cas { filter, sym } => {
                let kind = if *sym {
                    StoreKind::Sym
                } else {
                    StoreKind::Flat
                };
                filter.stats(kind, *sym)
            }
            ConcurrentStore::Striped(shards) => {
                let mut total = StoreStats {
                    kind: StoreKind::Shared,
                    sym: false,
                    bytes_resident: std::mem::size_of::<Self>(),
                    nodes: 0,
                    dedup_hits: 0,
                };
                for s in shards {
                    let st = s.0.lock().stats();
                    total.bytes_resident += st.bytes_resident;
                    total.nodes += st.nodes;
                    total.dedup_hits += st.dedup_hits;
                }
                total
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for k in [0u128, 1, u128::MAX, 0xdead_beef] {
            let s = shard_of(k);
            assert!(s < FILTER_SHARDS);
            assert_eq!(s, shard_of(k));
        }
    }

    #[test]
    fn filter_inserts_each_key_exactly_once() {
        let filter = CasFilter::new();
        // Enough keys to force several doublings of every stripe.
        let keys: Vec<u128> = (0..10_000u128)
            .map(|i| i.wrapping_mul(0x0123_4567_89ab_cdef_fedc_ba98_7654_3211))
            .collect();
        for &k in &keys {
            assert!(filter.insert(k), "first insert of {k:x} must be fresh");
        }
        for &k in &keys {
            assert!(!filter.insert(k), "second insert of {k:x} must dedup");
        }
        assert_eq!(filter.len(), keys.len());
        assert_eq!(filter.stats(StoreKind::Flat, false).dedup_hits, keys.len());
    }

    #[test]
    fn filter_handles_reserved_low_words() {
        let filter = CasFilter::new();
        // Keys whose low word collides with the slot markers get remapped
        // but must still behave as set members.
        for k in [0u128, 1, 1 << 64, (1 << 64) | 1] {
            assert!(filter.insert(k));
            assert!(!filter.insert(k));
        }
    }

    #[test]
    fn filter_is_safe_under_concurrent_insertion() {
        let filter = CasFilter::new();
        let fresh = AtomicUsize::new(0);
        let distinct = 4_096u128;
        crossbeam::scope(|scope| {
            for t in 0..4u128 {
                let filter = &filter;
                let fresh = &fresh;
                scope.spawn(move |_| {
                    // Overlapping ranges: every key is attempted by two
                    // threads.
                    for i in 0..distinct {
                        let key = ((i + t * distinct / 2) % distinct)
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835);
                        if filter.insert(key) {
                            fresh.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(
            fresh.load(Ordering::Relaxed),
            distinct as usize,
            "each distinct key must be claimed exactly once"
        );
    }

    #[test]
    fn striped_shared_store_is_safe_under_concurrent_insertion() {
        // Satellite: SharedStore membership equivalence under concurrent
        // inserts at 4 workers — the striped form must claim each
        // distinct key exactly once, like the CAS filter.
        let store = ConcurrentStore::new(StoreKind::Shared, false);
        let fresh = AtomicUsize::new(0);
        let distinct = 4_096u128;
        crossbeam::scope(|scope| {
            for t in 0..4u128 {
                let store = &store;
                let fresh = &fresh;
                scope.spawn(move |_| {
                    for i in 0..distinct {
                        let key = ((i + t * distinct / 2) % distinct)
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835);
                        if store.insert(key) {
                            fresh.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(fresh.load(Ordering::Relaxed), distinct as usize);
        assert_eq!(store.len(), distinct as usize);
        let stats = store.stats();
        assert_eq!(stats.kind, StoreKind::Shared);
        assert!(stats.nodes > FILTER_SHARDS, "shards must have split pages");
    }

    #[test]
    fn concurrent_kinds_report_their_stats() {
        let flat = ConcurrentStore::new(StoreKind::Flat, false);
        flat.insert(42);
        assert_eq!(flat.stats().kind, StoreKind::Flat);
        assert!(!flat.stats().sym);

        let sym = ConcurrentStore::new(StoreKind::Sym, false);
        sym.insert(42);
        assert_eq!(sym.stats().kind, StoreKind::Sym);
        assert!(sym.stats().sym);

        // Flat storage with symmetry-canonical keys still reports sym.
        let flat_sym = ConcurrentStore::new(StoreKind::Flat, true);
        flat_sym.insert(42);
        assert!(flat_sym.stats().sym);
        assert_eq!(flat_sym.stats().kind, StoreKind::Sym);
    }
}
