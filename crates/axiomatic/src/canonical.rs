//! Weak canonical RAR consistency (Appendix C of the paper) and the lemmas
//! relating it to the eco-based Coherence axiom.
//!
//! Appendix C proves (Theorem C.5): for any *candidate execution*
//! (Definition C.1), weak canonical consistency — the Batty-style axioms
//! HB, COH, RF, RFI, UPD with the release-sequence-free `sw` — holds iff
//! the paper's Coherence axiom (`irrefl(hb;eco?) ∧ irrefl(eco)`) does.
//! This module implements both sides and the supporting lemmas as
//! executable checks; `memcheck` compares them over enumerated candidates
//! (the Rust stand-in for the paper's Memalloy mechanisation).

use c11_core::state::C11State;
use c11_relations::Relation;

/// The axioms of Definition C.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CanonicalAxiom {
    /// `irrefl(hb)`
    Hb,
    /// `irrefl((rf⁻¹)? ; mo ; rf? ; hb)`
    Coh,
    /// `irrefl(rf ; hb)`
    Rf,
    /// `irrefl(rf)`
    Rfi,
    /// `irrefl((mo ; mo ; rf⁻¹) ∪ (mo ; rf))` — update atomicity
    Upd,
}

/// Evaluates each canonical axiom, returning the violated ones.
pub fn canonical_violations(state: &C11State) -> Vec<CanonicalAxiom> {
    let mut out = Vec::new();
    let n = state.len();
    let hb = state.hb();
    let rf = state.rf();
    let mo = state.mo();
    let rf_inv = rf.inverse();
    let id = Relation::identity(n);

    if !hb.is_irreflexive() {
        out.push(CanonicalAxiom::Hb);
    }
    // (rf⁻¹)? ; mo ; rf? ; hb
    let coh = rf_inv
        .union(&id)
        .compose(mo)
        .compose(&rf.union(&id))
        .compose(hb);
    if !coh.is_irreflexive() {
        out.push(CanonicalAxiom::Coh);
    }
    if !rf.compose(hb).is_irreflexive() {
        out.push(CanonicalAxiom::Rf);
    }
    if !rf.is_irreflexive() {
        out.push(CanonicalAxiom::Rfi);
    }
    let upd = mo.compose(mo).compose(&rf_inv).union(&mo.compose(rf));
    if !upd.is_irreflexive() {
        out.push(CanonicalAxiom::Upd);
    }
    out
}

/// `true` iff the execution is weakly canonical RAR consistent
/// (Definition C.3).
pub fn is_weakly_canonical_consistent(state: &C11State) -> bool {
    canonical_violations(state).is_empty()
}

/// Lemma C.6's reformulation of UPD: `irrefl(fr ; mo) ∧ irrefl(rf ; mo)`.
/// Exposed so tests can confirm the equivalence on arbitrary executions.
pub fn upd_reformulated(state: &C11State) -> bool {
    let fr = state.fr();
    let mo = state.mo();
    fr.compose(mo).is_irreflexive() && state.rf().compose(mo).is_irreflexive()
}

/// The closed form of eco from Lemma C.9:
/// `eco = rf ∪ mo ∪ fr ∪ (mo ; rf) ∪ (fr ; rf)`.
///
/// Holds for candidate executions satisfying UPD; `memcheck` asserts the
/// equality against the transitive-closure definition.
pub fn eco_closed_form(state: &C11State) -> Relation {
    let rf = state.rf();
    let mo = state.mo();
    let fr = state.fr();
    rf.union(mo)
        .union(&fr)
        .union(&mo.compose(rf))
        .union(&fr.compose(rf))
}

/// The coherence inclusions of Lemma C.8, checked on a concrete execution
/// (assuming UPD). Returns the name of the first failing inclusion.
pub fn coherence_inclusions(state: &C11State) -> Result<(), &'static str> {
    let rf = state.rf();
    let mo = state.mo();
    let fr = state.fr();
    let incl = |r: &Relation, s: &Relation| r.difference(s).is_empty();
    if !incl(&rf.compose(&fr), mo) {
        return Err("rf;fr ⊆ mo");
    }
    if !incl(&rf.compose(mo), mo) {
        return Err("rf;mo ⊆ mo");
    }
    if !incl(&rf.compose(rf), &mo.compose(rf)) {
        return Err("rf;rf ⊆ mo;rf");
    }
    if !incl(&mo.compose(&fr), mo) {
        return Err("mo;fr ⊆ mo");
    }
    if !incl(&fr.compose(mo), &fr) {
        return Err("fr;mo ⊆ fr");
    }
    if !incl(&fr.compose(&fr), &fr) {
        return Err("fr;fr ⊆ fr");
    }
    Ok(())
}

/// Theorem C.5 on a single candidate execution: weak canonical consistency
/// iff Coherence. Returns the two booleans for reporting.
pub fn theorem_c5_agrees(state: &C11State) -> (bool, bool) {
    let canonical = is_weakly_canonical_consistent(state);
    let coherent = crate::axioms::check_coherence(state).is_ok();
    (canonical, coherent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11_core::event::Event;
    use c11_core::semantics::{read_transitions, update_transitions, write_transitions};
    use c11_lang::{Action, ThreadId, VarId};

    const X: VarId = VarId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn initial_state_is_canonical_consistent() {
        let s = C11State::initial(&[0, 0]);
        assert!(is_weakly_canonical_consistent(&s));
        assert_eq!(theorem_c5_agrees(&s), (true, true));
    }

    #[test]
    fn operational_states_satisfy_both_sides() {
        let s = C11State::initial(&[0]);
        for w in write_transitions(&s, T1, X, 1, true) {
            for u in update_transitions(&w.state, T2, X, 2) {
                for r in read_transitions(&u.state, T1, X, false) {
                    let (canon, coh) = theorem_c5_agrees(&r.state);
                    assert!(canon && coh);
                    assert!(upd_reformulated(&r.state));
                    assert!(coherence_inclusions(&r.state).is_ok());
                    assert_eq!(&eco_closed_form(&r.state), r.state.eco());
                }
            }
        }
    }

    #[test]
    fn upd_violation_detected_both_ways() {
        // An update u that reads w0 but is mo-separated from it by w1:
        // mo: w0 → w1 → u, rf: w0 → u. Then (w0,u) ∈ rf with
        // (u ,w0) ∈ ... mo;mo;rf⁻¹ is reflexive at w0: w0→w1→u →rf⁻¹ w0.
        let s = C11State::initial(&[0]);
        let (s, w1) = s.append_event(Event::new(
            T1,
            Action::Wr {
                var: X,
                val: 1,
                release: false,
            },
        ));
        let (mut s, u) = s.append_event(Event::new(
            T2,
            Action::Upd {
                var: X,
                old: 0,
                new: 2,
            },
        ));
        s.rf_mut().add(0, u);
        s.mo_mut().add(0, w1);
        s.mo_mut().add(0, u);
        s.mo_mut().add(w1, u);
        assert!(canonical_violations(&s).contains(&CanonicalAxiom::Upd));
        assert!(!upd_reformulated(&s), "Lemma C.6 reformulation agrees");
        // And the eco side: fr(u, w1)? u reads w0; mo-after w0: {w1, u};
        // fr: u→w1. Also mo: w1→u. fr;mo… eco cycle u→w1→u ⇒ eco reflexive.
        assert!(crate::axioms::check_coherence(&s).is_err());
    }

    #[test]
    fn rfi_catches_self_reading_event() {
        let s = C11State::initial(&[0]);
        let (mut s, u) = s.append_event(Event::new(
            T1,
            Action::Upd {
                var: X,
                old: 2,
                new: 2,
            },
        ));
        s.rf_mut().add(u, u); // an update "reading itself"
        s.mo_mut().add(0, u);
        assert!(canonical_violations(&s).contains(&CanonicalAxiom::Rfi));
    }

    #[test]
    fn rf_hb_violation() {
        // A read hb-before its own writer: w sb-after r in one thread,
        // rf: w → r.
        let s = C11State::initial(&[0]);
        let (s, r) = s.append_event(Event::new(
            T1,
            Action::Rd {
                var: X,
                val: 1,
                acquire: false,
            },
        ));
        let (mut s, w) = s.append_event(Event::new(
            T1,
            Action::Wr {
                var: X,
                val: 1,
                release: false,
            },
        ));
        s.rf_mut().add(w, r);
        s.mo_mut().add(0, w);
        // (w,r) ∈ rf and (r,w) ∈ sb ⊆ hb ⇒ rf;hb reflexive at w.
        assert!(canonical_violations(&s).contains(&CanonicalAxiom::Rf));
        // Coherence agrees: rf ⊆ eco, (r,w) ∈ hb, (w,r) ∈ eco ⇒ hb;eco? refl.
        assert!(crate::axioms::check_coherence(&s).is_err());
    }
}
