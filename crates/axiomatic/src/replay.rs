//! The completeness construction (Theorem 4.8), executable.
//!
//! Given a *valid* execution `Γ = ((D, sb), rf, mo)`, replay its non-init
//! events through the RA event semantics in a linearization of `sb ∪ rf`
//! (which exists by No-Thin-Air). At each step the theorem prescribes the
//! observed write: the `rf`-writer for reads, the immediate mo-predecessor
//! *within the replayed prefix* for writes, and both (coinciding) for
//! updates. The replay asserts that the prescribed transition is enabled
//! and that the reached state equals `Γ` restricted to the prefix — i.e.
//! exactly the statement of Theorem 4.8.

use crate::axioms::is_valid;
use c11_core::event::EventId;
use c11_core::semantics::{read_transitions, update_transitions, write_transitions};
use c11_core::state::C11State;
use c11_relations::{some_linearization, BitSet};

/// Why a replay failed (a counterexample to completeness if the input was
/// valid — should never occur).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// The input execution is not valid (Definition 4.2).
    InvalidInput,
    /// `sb ∪ rf` was cyclic (cannot happen for valid inputs).
    NoLinearization,
    /// The prescribed transition was not enabled at step `at`.
    TransitionNotEnabled {
        /// Index into the linearization.
        at: usize,
    },
    /// The reached prefix state differed from `Γ` restricted to the
    /// prefix at step `at`.
    PrefixMismatch {
        /// Index into the linearization.
        at: usize,
    },
}

/// Replays `target` through the RA semantics, checking Theorem 4.8.
/// Returns the linearization used (non-init events of `target`).
pub fn replay(target: &C11State) -> Result<Vec<EventId>, ReplayError> {
    if !is_valid(target) {
        return Err(ReplayError::InvalidInput);
    }
    // Linearize sb ∪ rf over non-init events.
    let non_init: BitSet = BitSet::from_iter(target.ids().filter(|&e| !target.event(e).is_init()));
    let order = target.sb().union(target.rf());
    let lin = some_linearization(&order, &non_init).ok_or(ReplayError::NoLinearization)?;

    // Replay. `map[target_id]` = id in the replay arena.
    let inits: Vec<u32> = {
        // init writes appear first in both arenas, in variable order, by
        // construction of C11State::initial and the enumerators.
        let mut vals = Vec::new();
        for e in target.ids() {
            let ev = target.event(e);
            if ev.is_init() {
                let v = ev.var().0 as usize;
                if vals.len() <= v {
                    vals.resize(v + 1, 0);
                }
                vals[v] = ev.wrval().expect("init writes write");
            }
        }
        vals
    };
    let mut cur = C11State::initial(&inits);
    let mut map = vec![usize::MAX; target.len()];
    for e in target.ids().filter(|&e| target.event(e).is_init()) {
        map[e] = target.event(e).var().0 as usize;
    }

    let mut replayed: Vec<EventId> = Vec::new(); // target ids, in order
    for (at, &e) in lin.iter().enumerate() {
        let ev = *target.event(e);
        let t = ev.tid;
        let x = ev.var();
        // The prescribed observed write, in target ids.
        let observed_target: EventId = if ev.is_update() || ev.is_read() {
            // rf writer (for updates this coincides with the immediate
            // mo-predecessor by update atomicity).
            target
                .rf()
                .preimage(e)
                .next()
                .expect("valid executions have complete rf")
        } else {
            // Immediate mo-predecessor within the prefix: mo-maximal among
            // already-present writes to x that are mo-before e.
            let candidates: Vec<EventId> = target
                .ids()
                .filter(|&w| {
                    (map[w] != usize::MAX)
                        && target.event(w).is_write()
                        && target.event(w).var() == x
                        && target.mo().contains(w, e)
                })
                .collect();
            *candidates
                .iter()
                .find(|&&w| {
                    !candidates
                        .iter()
                        .any(|&w2| w2 != w && target.mo().contains(w, w2))
                })
                .expect("a write has an mo-predecessor (at least the init)")
        };
        let observed_replay = map[observed_target];

        let trs = if ev.is_update() {
            update_transitions(&cur, t, x, ev.wrval().expect("update writes"))
        } else if ev.is_read() {
            read_transitions(&cur, t, x, ev.is_acquire())
        } else {
            write_transitions(
                &cur,
                t,
                x,
                ev.wrval().expect("write writes"),
                ev.is_release(),
            )
        };
        let tr = trs
            .into_iter()
            .find(|tr| tr.observed == observed_replay && tr.action == ev.action)
            .ok_or(ReplayError::TransitionNotEnabled { at })?;
        map[e] = tr.event;
        cur = tr.state;
        replayed.push(e);

        // Prefix equality: cur ≃ target ↾ (inits ∪ replayed).
        let mut keep = BitSet::from_iter(target.ids().filter(|&i| target.event(i).is_init()));
        for &r in &replayed {
            keep.insert(r);
        }
        let prefix = target.restrict(&keep);
        if prefix.canonical() != cur.canonical() {
            return Err(ReplayError::PrefixMismatch { at });
        }
    }
    Ok(lin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::justify::justifications;
    use c11_core::event::Event;
    use c11_lang::{Action, ThreadId, VarId};

    const X: VarId = VarId(0);
    const Y: VarId = VarId(1);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    fn wr(var: VarId, val: u32, release: bool) -> Action {
        Action::Wr { var, val, release }
    }

    fn rd(var: VarId, val: u32, acquire: bool) -> Action {
        Action::Rd { var, val, acquire }
    }

    #[test]
    fn example_4_5_round_trip() {
        // Pre-execution of Example 4.5: t1 reads x = 5 then writes z = 5;
        // t2 writes x = 5. Justify, then replay every justification.
        let s = C11State::initial(&[0, 0]);
        let (s, _) = s.append_event(Event::new(T1, rd(X, 5, false)));
        let (s, _) = s.append_event(Event::new(T1, wr(Y, 5, false)));
        let (pre, _) = s.append_event(Event::new(T2, wr(X, 5, false)));
        let js = justifications(&pre);
        assert!(!js.is_empty());
        for j in &js {
            let lin = replay(j).expect("Theorem 4.8 replay");
            // The read (event 2) must come after its writer (event 4).
            let pos = |e: EventId| lin.iter().position(|&x| x == e).unwrap();
            assert!(pos(4) < pos(2), "rf edges are respected by the order");
        }
    }

    #[test]
    fn invalid_input_rejected() {
        let s = C11State::initial(&[0]);
        let (s2, _) = s.append_event(Event::new(T1, rd(X, 3, false)));
        assert_eq!(replay(&s2), Err(ReplayError::InvalidInput));
    }

    #[test]
    fn replay_with_updates() {
        let s = C11State::initial(&[0]);
        let (s, u) = s.append_event(Event::new(
            T1,
            Action::Upd {
                var: X,
                old: 0,
                new: 1,
            },
        ));
        let (pre, _r) = s.append_event(Event::new(T2, rd(X, 1, true)));
        let _ = u;
        for j in justifications(&pre) {
            replay(&j).expect("replayable");
        }
    }

    #[test]
    fn replay_mo_middle_insertion() {
        // A justification where a write sits mo-between two others forces
        // the replay to pick a middle insertion point.
        let s = C11State::initial(&[0]);
        let (s, _w1) = s.append_event(Event::new(T1, wr(X, 1, false)));
        let (pre, _w2) = s.append_event(Event::new(T2, wr(X, 2, false)));
        let js = justifications(&pre);
        assert_eq!(js.len(), 2);
        for j in js {
            replay(&j).expect("both mo orders replay");
        }
    }
}
