//! The validity axioms of Definition 4.2.
//!
//! A C11 execution `((D, sb), rf, mo)` is *valid* iff
//!
//! * **SB-Total** — `sb` orders initialising writes before everything and
//!   is a strict total order per (non-initialising) thread;
//! * **MO-Valid** — `mo` is a disjoint union of per-variable strict total
//!   orders on writes, with initialising writes first;
//! * **RF-Complete** — every read reads-from exactly one write, on the same
//!   variable, with matching value;
//! * **No-Thin-Air** — `sb ∪ rf` is acyclic;
//! * **Coherence** — `hb ; eco?` and `eco` are irreflexive.

use c11_core::state::C11State;
use c11_relations::Relation;

/// The five axioms of Definition 4.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axiom {
    /// `sb` shape (totality per thread, inits first).
    SbTotal,
    /// `mo` shape (per-variable strict total orders on writes).
    MoValid,
    /// Reads-from completeness and well-formedness.
    RfComplete,
    /// Acyclicity of `sb ∪ rf`.
    NoThinAir,
    /// Irreflexivity of `hb ; eco?` and of `eco`.
    Coherence,
}

/// A violated axiom with a human-readable explanation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which axiom failed.
    pub axiom: Axiom,
    /// Why (mentions event ids).
    pub reason: String,
}

fn violation(axiom: Axiom, reason: impl Into<String>) -> Violation {
    Violation {
        axiom,
        reason: reason.into(),
    }
}

/// Checks SB-Total (Definition 4.2). Implements the paper's three clauses
/// verbatim, plus strictness of `sb|_t` (irreflexivity/asymmetry), which
/// Definition 3.1 demands of every C11 state.
pub fn check_sb_total(state: &C11State) -> Result<(), Violation> {
    let sb = state.sb();
    let v = |r: String| Err(violation(Axiom::SbTotal, r));
    for e in state.ids() {
        for e2 in state.ids() {
            let te = state.event(e).tid;
            let te2 = state.event(e2).tid;
            if sb.contains(e, e2) && !(te.is_init() || te == te2) {
                return v(format!("sb edge ({e},{e2}) crosses threads"));
            }
            if te.is_init() && !te2.is_init() && !sb.contains(e, e2) {
                return v(format!("init write {e} not sb-before {e2}"));
            }
            if !te.is_init() && te == te2 && e != e2 {
                let fwd = sb.contains(e, e2);
                let bwd = sb.contains(e2, e);
                if !fwd && !bwd {
                    return v(format!("same-thread events {e},{e2} unordered in sb"));
                }
                if fwd && bwd {
                    return v(format!("sb relates {e},{e2} both ways"));
                }
            }
        }
        if sb.contains(e, e) {
            return v(format!("sb is reflexive at {e}"));
        }
    }
    Ok(())
}

/// Checks MO-Valid (Definition 4.2): `mo` relates only writes of the same
/// variable, is a strict order (irreflexive + transitive), orders
/// initialising writes before other writes of their variable, and is total
/// on distinct non-init writes per variable.
pub fn check_mo_valid(state: &C11State) -> Result<(), Violation> {
    let mo = state.mo();
    let v = |r: String| Err(violation(Axiom::MoValid, r));
    for (w, w2) in mo.pairs() {
        let ew = state.event(w);
        let ew2 = state.event(w2);
        if !ew.is_write() || !ew2.is_write() {
            return v(format!("mo edge ({w},{w2}) touches a non-write"));
        }
        if ew.var() != ew2.var() {
            return v(format!("mo edge ({w},{w2}) crosses variables"));
        }
        if w == w2 {
            return v(format!("mo is reflexive at {w}"));
        }
        if mo.contains(w2, w) {
            return v(format!("mo relates {w},{w2} both ways"));
        }
    }
    // Transitivity.
    for (a, b) in mo.pairs() {
        for c in mo.image(b) {
            if !mo.contains(a, c) {
                return v(format!("mo not transitive: ({a},{b}),({b},{c})"));
            }
        }
    }
    // Totality per variable + inits first.
    let writes: Vec<usize> = state.writes().iter().collect();
    for &w in &writes {
        for &w2 in &writes {
            if w == w2 || state.event(w).var() != state.event(w2).var() {
                continue;
            }
            let iw = state.event(w).is_init();
            let iw2 = state.event(w2).is_init();
            if iw && !iw2 && !mo.contains(w, w2) {
                return v(format!("init write {w} not mo-before {w2}"));
            }
            if !iw && !iw2 && !mo.contains(w, w2) && !mo.contains(w2, w) {
                return v(format!("writes {w},{w2} to one variable unordered in mo"));
            }
        }
    }
    Ok(())
}

/// Checks RF-Complete (Definition 4.2): every read has exactly one writer,
/// and rf edges are well-formed (write→read, same variable, value match).
pub fn check_rf_complete(state: &C11State) -> Result<(), Violation> {
    let rf = state.rf();
    let v = |r: String| Err(violation(Axiom::RfComplete, r));
    for (w, r) in rf.pairs() {
        let ew = state.event(w);
        let er = state.event(r);
        if !ew.is_write() || !er.is_read() {
            return v(format!("rf edge ({w},{r}) is not write→read"));
        }
        if ew.var() != er.var() {
            return v(format!("rf edge ({w},{r}) crosses variables"));
        }
        if ew.wrval() != er.rdval() {
            return v(format!(
                "rf edge ({w},{r}) value mismatch: wrote {:?}, read {:?}",
                ew.wrval(),
                er.rdval()
            ));
        }
    }
    for r in state.reads().iter() {
        let writers = rf.preimage(r).count();
        if writers != 1 {
            return v(format!("read {r} has {writers} writers (want exactly 1)"));
        }
    }
    Ok(())
}

/// Checks No-Thin-Air (Definition 4.2): `sb ∪ rf` acyclic.
pub fn check_no_thin_air(state: &C11State) -> Result<(), Violation> {
    if state.sb().union(state.rf()).is_acyclic() {
        Ok(())
    } else {
        Err(violation(Axiom::NoThinAir, "sb ∪ rf has a cycle"))
    }
}

/// Checks Coherence (Definition 4.2): `hb ; eco?` and `eco` irreflexive.
pub fn check_coherence(state: &C11State) -> Result<(), Violation> {
    let eco = state.eco();
    if !eco.is_irreflexive() {
        return Err(violation(Axiom::Coherence, "eco is reflexive"));
    }
    let hb = state.hb();
    if !hb.is_irreflexive() {
        return Err(violation(Axiom::Coherence, "hb is reflexive"));
    }
    let hb_ecoq = hb.compose(&eco.reflexive_closure());
    if !hb_ecoq.is_irreflexive() {
        return Err(violation(Axiom::Coherence, "hb ; eco? is reflexive"));
    }
    Ok(())
}

/// Checks all five axioms, collecting every violation.
pub fn check_validity(state: &C11State) -> Vec<Violation> {
    [
        check_sb_total(state),
        check_mo_valid(state),
        check_rf_complete(state),
        check_no_thin_air(state),
        check_coherence(state),
    ]
    .into_iter()
    .filter_map(Result::err)
    .collect()
}

/// `true` iff the execution satisfies Definition 4.2 entirely.
pub fn is_valid(state: &C11State) -> bool {
    check_validity(state).is_empty()
}

/// Validity *without* No-Thin-Air — the notion compared against canonical
/// consistency in Appendix C (Theorem C.5 concerns candidate executions,
/// where `sb ∪ rf` may be cyclic).
pub fn is_valid_sans_thin_air(state: &C11State) -> bool {
    check_sb_total(state).is_ok()
        && check_mo_valid(state).is_ok()
        && check_rf_complete(state).is_ok()
        && check_coherence(state).is_ok()
}

/// A *candidate execution* in the sense of Definition C.1: RF-Complete,
/// MO-Valid and SB-Total hold (but not necessarily coherence or
/// no-thin-air).
pub fn is_candidate_execution(state: &C11State) -> bool {
    check_sb_total(state).is_ok()
        && check_mo_valid(state).is_ok()
        && check_rf_complete(state).is_ok()
}

/// Definition 4.3: a pre-execution state `(D, sb)` is *justifiable* iff
/// some `rf`, `mo` make it valid. Re-exported from [`crate::justify`] in
/// terms of the search; this helper checks a *given* justification.
pub fn justifies(pre: &C11State, rf: &Relation, mo: &Relation) -> bool {
    let justified = C11State::from_parts(
        pre.events().to_vec(),
        pre.sb().clone(),
        rf.clone(),
        mo.clone(),
    );
    is_valid(&justified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11_core::event::Event;
    use c11_core::semantics::{read_transitions, update_transitions, write_transitions};
    use c11_lang::{Action, ThreadId, VarId};

    const X: VarId = VarId(0);
    const Y: VarId = VarId(1);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    fn wr(var: VarId, val: u32) -> Action {
        Action::Wr {
            var,
            val,
            release: false,
        }
    }

    fn rd(var: VarId, val: u32) -> Action {
        Action::Rd {
            var,
            val,
            acquire: false,
        }
    }

    #[test]
    fn initial_state_is_valid() {
        let s = C11State::initial(&[0, 0, 0]);
        assert!(is_valid(&s), "{:?}", check_validity(&s));
    }

    #[test]
    fn operational_steps_preserve_validity() {
        // A small hand-driven run: t1 writes x, t2 updates x, t1 reads.
        let s = C11State::initial(&[0, 0]);
        let s = write_transitions(&s, T1, X, 1, true)[0].state.clone();
        assert!(is_valid(&s));
        for u in update_transitions(&s, T2, X, 2) {
            assert!(is_valid(&u.state), "{:?}", check_validity(&u.state));
            for r in read_transitions(&u.state, T1, Y, false) {
                assert!(is_valid(&r.state));
            }
        }
    }

    #[test]
    fn missing_rf_edge_is_incomplete() {
        let s = C11State::initial(&[0]);
        let (mut s, _r) = s.append_event(Event::new(T1, rd(X, 0)));
        // no rf edge added
        let errs = check_validity(&s);
        assert!(errs.iter().any(|v| v.axiom == Axiom::RfComplete));
        s.rf_mut().add(0, 1);
        assert!(is_valid(&s));
    }

    #[test]
    fn value_mismatch_in_rf_detected() {
        let s = C11State::initial(&[0]);
        let (mut s, r) = s.append_event(Event::new(T1, rd(X, 7)));
        s.rf_mut().add(0, r); // init wrote 0, read claims 7
        assert!(check_rf_complete(&s).is_err());
    }

    #[test]
    fn cross_thread_sb_detected() {
        let s = C11State::initial(&[0]);
        let (s, a) = s.append_event(Event::new(T1, wr(X, 1)));
        let (mut s, b) = s.append_event(Event::new(T2, wr(X, 2)));
        // Corrupt: cross-thread sb edge.
        let mut sb = s.sb().clone();
        sb.add(a, b);
        s = C11State::from_parts(s.events().to_vec(), sb, s.rf().clone(), s.mo().clone());
        assert!(check_sb_total(&s).is_err());
    }

    #[test]
    fn unordered_same_thread_events_detected() {
        let s = C11State::initial(&[0]);
        let events = vec![
            Event::init_write(X, 0),
            Event::new(T1, wr(X, 1)),
            Event::new(T1, wr(X, 2)),
        ];
        // sb only has init edges, missing the same-thread order.
        let mut sb = Relation::new(3);
        sb.add(0, 1);
        sb.add(0, 2);
        let s2 = C11State::from_parts(events, sb, Relation::new(3), s.mo().clone());
        assert!(check_sb_total(&s2).is_err());
    }

    #[test]
    fn mo_cross_variable_detected() {
        let s = C11State::initial(&[0, 0]);
        let (s, a) = s.append_event(Event::new(T1, wr(X, 1)));
        let (mut s, b) = s.append_event(Event::new(T1, wr(Y, 1)));
        s.mo_mut().add(a, b);
        assert!(check_mo_valid(&s).is_err());
    }

    #[test]
    fn mo_untotal_detected() {
        let s = C11State::initial(&[0]);
        let (s, _a) = s.append_event(Event::new(T1, wr(X, 1)));
        let (mut s, _b) = s.append_event(Event::new(T2, wr(X, 2)));
        // Only init-edges in mo; the two thread writes are unordered.
        s.mo_mut().add(0, 1);
        s.mo_mut().add(0, 2);
        assert!(check_mo_valid(&s).is_err());
    }

    #[test]
    fn thin_air_cycle_detected() {
        // r1 reads from w2, r2 reads from w1, with each write sb-after the
        // other thread's read: a classic sb ∪ rf cycle (load buffering).
        let events = vec![
            Event::init_write(X, 0),
            Event::init_write(Y, 0),
            Event::new(T1, rd(X, 1)), // 2
            Event::new(T1, wr(Y, 1)), // 3
            Event::new(T2, rd(Y, 1)), // 4
            Event::new(T2, wr(X, 1)), // 5
        ];
        let mut sb = Relation::new(6);
        for i in [2, 3, 4, 5] {
            sb.add(0, i);
            sb.add(1, i);
        }
        sb.add(2, 3);
        sb.add(4, 5);
        let mut rf = Relation::new(6);
        rf.add(5, 2);
        rf.add(3, 4);
        let mut mo = Relation::new(6);
        mo.add(0, 5);
        mo.add(1, 3);
        let s = C11State::from_parts(events, sb, rf, mo);
        assert!(check_no_thin_air(&s).is_err());
        // The rest of the axioms hold: LB is only excluded by NoThinAir.
        assert!(check_sb_total(&s).is_ok());
        assert!(check_mo_valid(&s).is_ok());
        assert!(check_rf_complete(&s).is_ok());
        assert!(check_coherence(&s).is_ok());
        assert!(is_valid_sans_thin_air(&s));
        assert!(!is_valid(&s));
    }

    #[test]
    fn coherence_violation_detected() {
        // Read of an mo-overwritten value after hb-observing the newer
        // write: w1 →mo w2, w2 →sb r (same thread), r reads w1.
        let events = vec![
            Event::init_write(X, 0),
            Event::new(T1, wr(X, 1)), // 1 (other thread's write)
            Event::new(T2, wr(X, 2)), // 2
            Event::new(T2, rd(X, 1)), // 3 reads stale w1 after writing w2
        ];
        let mut sb = Relation::new(4);
        sb.add(0, 1);
        sb.add(0, 2);
        sb.add(0, 3);
        sb.add(2, 3);
        let mut rf = Relation::new(4);
        rf.add(1, 3);
        let mut mo = Relation::new(4);
        mo.add(0, 1);
        mo.add(0, 2);
        mo.add(1, 2); // w1 mo-before w2
        let s = C11State::from_parts(events, sb, rf, mo);
        // fr: r → w2; hb: w2 → r; so hb;eco? has cycle r → w2 → … wait:
        // (w2, r) ∈ hb and (r, w2) ∈ fr ⊆ eco ⇒ (w2,w2) ∈ hb;eco.
        assert!(check_coherence(&s).is_err());
        assert!(check_rf_complete(&s).is_ok());
    }

    #[test]
    fn justifies_checks_a_given_justification() {
        let s = C11State::initial(&[0]);
        let (pre, r) = s.append_event(Event::new(T1, rd(X, 0)));
        let mut rf = Relation::new(2);
        rf.add(0, r);
        let mo = Relation::new(2);
        assert!(justifies(&pre, &rf, &mo));
        let empty = Relation::new(2);
        assert!(!justifies(&pre, &empty, &mo));
    }
}
