//! Justification search: the classical two-step axiomatic procedure.
//!
//! Given a pre-execution `(D, sb)` (reads already carry candidate values),
//! enumerate every `rf` (each read paired with a same-variable write of a
//! matching value) and every `mo` (per-variable permutations of the
//! non-initialising writes, initialising writes first), and keep the
//! combinations that satisfy Definition 4.2. This is the *baseline* the
//! operational semantics is measured against (experiment E13): the paper's
//! point is precisely that validity can instead be enforced on-the-fly.

use crate::axioms::is_valid;
use c11_core::event::EventId;
use c11_core::state::C11State;
use c11_lang::VarId;
use c11_relations::Relation;

/// Statistics from a justification search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of `(rf, mo)` candidate pairs constructed and checked.
    pub candidates: usize,
    /// Number of candidates passing all axioms.
    pub valid: usize,
}

/// Visits every candidate justification of `pre`. The visitor receives the
/// fully-built state and returns `false` to stop early. Returns stats.
pub fn for_each_candidate<F: FnMut(&C11State) -> bool>(pre: &C11State, mut f: F) -> SearchStats {
    let n = pre.len();
    // Reads, each with its candidate writer lists.
    let reads: Vec<EventId> = pre.reads().iter().collect();
    let writer_choices: Vec<Vec<EventId>> = reads
        .iter()
        .map(|&r| {
            let er = pre.event(r);
            pre.writes_to(er.var())
                .filter(|&w| w != r && pre.event(w).wrval() == er.rdval())
                .collect()
        })
        .collect();
    if writer_choices.iter().any(Vec::is_empty) && !reads.is_empty() {
        // Some read has no possible writer: zero candidates.
        return SearchStats::default();
    }
    // Per-variable write lists (non-init), for mo permutations.
    let vars: Vec<VarId> = {
        let mut v: Vec<VarId> = pre.writes().iter().map(|w| pre.event(w).var()).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let var_writes: Vec<(Vec<EventId>, Vec<EventId>)> = vars
        .iter()
        .map(|&x| {
            let (init, rest): (Vec<EventId>, Vec<EventId>) =
                pre.writes_to(x).partition(|&w| pre.event(w).is_init());
            (init, rest)
        })
        .collect();

    let mut stats = SearchStats::default();
    let mut rf_pick = vec![0usize; reads.len()];
    let mut stop = false;

    // Enumerate rf assignments (odometer), then mo permutations per var.
    loop {
        // Build rf for the current assignment.
        let mut rf = Relation::new(n);
        for (i, &r) in reads.iter().enumerate() {
            rf.add(writer_choices[i][rf_pick[i]], r);
        }
        // Enumerate mo: product of per-variable permutations.
        enumerate_mos(pre, &var_writes, n, &mut |mo| {
            stats.candidates += 1;
            let cand = C11State::from_parts(
                pre.events().to_vec(),
                pre.sb().clone(),
                rf.clone(),
                mo.clone(),
            );
            if is_valid(&cand) {
                stats.valid += 1;
                if !f(&cand) {
                    stop = true;
                }
            }
            !stop
        });
        if stop {
            return stats;
        }
        // Advance the odometer.
        if reads.is_empty() {
            return stats;
        }
        let mut i = 0;
        loop {
            if i == reads.len() {
                return stats;
            }
            rf_pick[i] += 1;
            if rf_pick[i] < writer_choices[i].len() {
                break;
            }
            rf_pick[i] = 0;
            i += 1;
        }
    }
}

/// Enumerates all `mo` relations: per variable, init writes first, then
/// every permutation of the remaining writes, all transitively closed.
fn enumerate_mos<F: FnMut(&Relation) -> bool>(
    _pre: &C11State,
    var_writes: &[(Vec<EventId>, Vec<EventId>)],
    n: usize,
    f: &mut F,
) {
    fn rec<F: FnMut(&Relation) -> bool>(
        var_writes: &[(Vec<EventId>, Vec<EventId>)],
        idx: usize,
        acc: &Relation,
        f: &mut F,
        stop: &mut bool,
    ) {
        if *stop {
            return;
        }
        if idx == var_writes.len() {
            if !f(acc) {
                *stop = true;
            }
            return;
        }
        let (init, rest) = &var_writes[idx];
        permute(rest, &mut |perm| {
            let mut mo = acc.clone();
            // init writes before every non-init write of this variable
            for &i in init {
                for &w in perm {
                    mo.add(i, w);
                }
            }
            // chain order, transitively closed by construction
            for a in 0..perm.len() {
                for b in (a + 1)..perm.len() {
                    mo.add(perm[a], perm[b]);
                }
            }
            rec(var_writes, idx + 1, &mo, f, stop);
            !*stop
        });
    }
    let mut stop = false;
    rec(var_writes, 0, &Relation::new(n), f, &mut stop);
}

/// Calls `f` with each permutation of `items`; `f` returns `false` to stop.
fn permute<F: FnMut(&[EventId]) -> bool>(items: &[EventId], f: &mut F) {
    fn rec<F: FnMut(&[EventId]) -> bool>(
        remaining: &mut Vec<EventId>,
        prefix: &mut Vec<EventId>,
        f: &mut F,
        stop: &mut bool,
    ) {
        if *stop {
            return;
        }
        if remaining.is_empty() {
            if !f(prefix) {
                *stop = true;
            }
            return;
        }
        for i in 0..remaining.len() {
            let x = remaining.remove(i);
            prefix.push(x);
            rec(remaining, prefix, f, stop);
            prefix.pop();
            remaining.insert(i, x);
            if *stop {
                return;
            }
        }
    }
    let mut remaining = items.to_vec();
    let mut prefix = Vec::with_capacity(items.len());
    let mut stop = false;
    rec(&mut remaining, &mut prefix, f, &mut stop);
}

/// All valid justifications of a pre-execution (Definition 4.3 witnesses).
pub fn justifications(pre: &C11State) -> Vec<C11State> {
    let mut out = Vec::new();
    for_each_candidate(pre, |s| {
        out.push(s.clone());
        true
    });
    out
}

/// `true` iff some `(rf, mo)` validates the pre-execution (Definition 4.3).
pub fn is_justifiable(pre: &C11State) -> bool {
    let mut found = false;
    for_each_candidate(pre, |_| {
        found = true;
        false
    });
    found
}

/// Runs the search to completion and reports how many candidates were
/// examined vs. valid — the cost model for the generate-and-test baseline.
pub fn search_stats(pre: &C11State) -> SearchStats {
    for_each_candidate(pre, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11_core::event::Event;
    use c11_lang::{Action, ThreadId};

    const X: VarId = VarId(0);
    const Y: VarId = VarId(1);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    fn wr(var: VarId, val: u32) -> Action {
        Action::Wr {
            var,
            val,
            release: false,
        }
    }

    fn rd(var: VarId, val: u32) -> Action {
        Action::Rd {
            var,
            val,
            acquire: false,
        }
    }

    #[test]
    fn example_4_5_pre_execution_is_justifiable() {
        // thread 1: z := x (reads x = 5, writes z = 5); thread 2: x := 5.
        let s = C11State::initial(&[0, 0]); // x, z… use X and Y=z
        let (s, _r) = s.append_event(Event::new(T1, rd(X, 5)));
        let (s, _wz) = s.append_event(Event::new(T1, wr(Y, 5)));
        let (pre, _wx) = s.append_event(Event::new(T2, wr(X, 5)));
        assert!(is_justifiable(&pre));
        let js = justifications(&pre);
        assert!(!js.is_empty());
        for j in &js {
            assert!(crate::axioms::is_valid(j));
            // The read must read from thread 2's write (the only x=5 write).
            assert!(j.rf().contains(4, 2));
        }
    }

    #[test]
    fn read_of_never_written_value_unjustifiable() {
        let s = C11State::initial(&[0]);
        let (pre, _r) = s.append_event(Event::new(T1, rd(X, 42)));
        assert!(!is_justifiable(&pre));
        assert_eq!(search_stats(&pre).candidates, 0);
    }

    #[test]
    fn stale_read_after_own_write_unjustifiable() {
        // t1 writes x = 1 then reads x = 0: rf must come from init, but
        // (init, w1) ∈ mo and w1 →sb r gives a coherence cycle. No
        // justification exists.
        let s = C11State::initial(&[0]);
        let (s, _w) = s.append_event(Event::new(T1, wr(X, 1)));
        let (pre, _r) = s.append_event(Event::new(T1, rd(X, 0)));
        assert!(!is_justifiable(&pre));
        let st = search_stats(&pre);
        assert!(st.candidates > 0 && st.valid == 0);
    }

    #[test]
    fn two_writers_two_mo_orders() {
        let s = C11State::initial(&[0]);
        let (s, _w1) = s.append_event(Event::new(T1, wr(X, 1)));
        let (pre, _w2) = s.append_event(Event::new(T2, wr(X, 2)));
        let js = justifications(&pre);
        assert_eq!(js.len(), 2, "both mo interleavings are valid");
    }

    #[test]
    fn update_must_sit_immediately_after_its_writer() {
        // w1 = wr(x,1) by t1; u = upd(x,1,2) by t2 reading w1. mo must be
        // init → w1 → u; the other permutation violates coherence/UPD.
        let s = C11State::initial(&[0]);
        let (s, w1) = s.append_event(Event::new(T1, wr(X, 1)));
        let (pre, u) = s.append_event(Event::new(
            T2,
            Action::Upd {
                var: X,
                old: 1,
                new: 2,
            },
        ));
        let js = justifications(&pre);
        assert_eq!(js.len(), 1);
        assert!(js[0].mo().contains(w1, u));
        assert!(js[0].rf().contains(w1, u));
    }

    #[test]
    fn search_stats_counts_products() {
        // Two reads with two possible writers each → 4 rf assignments; one
        // variable with two non-init writes → 2 mo orders. 8 candidates.
        let s = C11State::initial(&[0]);
        let (s, _w1) = s.append_event(Event::new(T1, wr(X, 1)));
        let (s, _w2) = s.append_event(Event::new(T2, wr(X, 1)));
        let (s, _r1) = s.append_event(Event::new(T1, rd(X, 1)));
        let (pre, _r2) = s.append_event(Event::new(T2, rd(X, 1)));
        let st = search_stats(&pre);
        assert_eq!(st.candidates, 8);
        assert!(st.valid >= 1);
    }
}
