//! The axiomatic side of the paper: validity of C11 executions
//! (Definition 4.2), the weak canonical RAR consistency of Appendix C, the
//! justification search that turns pre-executions into valid executions
//! (the classical two-step "generate and test" procedure the paper's
//! introduction describes — our benchmark *baseline*), and a bounded
//! Memalloy-style equivalence checker (Appendix E).

pub mod axioms;
pub mod canonical;
pub mod justify;
pub mod memcheck;
pub mod replay;

pub use axioms::{check_validity, is_valid, Axiom, Violation};
pub use canonical::{is_weakly_canonical_consistent, CanonicalAxiom};
pub use justify::{is_justifiable, justifications};
pub use memcheck::{enumerate_candidates, equivalence_check, CandidateConfig, EquivalenceReport};
pub use replay::{replay, ReplayError};
