//! Bounded equivalence checking of the two axiom systems — the Rust
//! stand-in for the paper's Memalloy mechanisation (Appendix E).
//!
//! The paper compared its eco-based RAR model against a simplified
//! canonical C11 model "for models up to size 7" with Alloy. Here we
//! *enumerate* candidate executions (Definition C.1) directly — exhaustively
//! up to a configurable event bound with Memalloy-style symmetry breaking
//! (threads and variables as restricted-growth strings, distinct write
//! values, read values forced by `rf`) — and assert Theorem C.5 on each:
//! weak canonical consistency iff eco-based Coherence. Larger sizes are
//! covered by seeded random sampling.

use crate::axioms::is_candidate_execution;
use crate::canonical::theorem_c5_agrees;
use c11_core::event::Event;
use c11_core::state::C11State;
use c11_lang::{Action, ThreadId, VarId};
use c11_relations::Relation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bounds for candidate-execution enumeration.
#[derive(Clone, Copy, Debug)]
pub struct CandidateConfig {
    /// Number of non-initialising events (exact, per enumeration round).
    pub events: usize,
    /// Maximum number of threads.
    pub max_threads: usize,
    /// Maximum number of variables.
    pub max_vars: usize,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            events: 4,
            max_threads: 2,
            max_vars: 2,
        }
    }
}

/// Event kinds enumerated per position (updates are always RA).
const KINDS: &[Kind] = &[
    Kind::Write { release: false },
    Kind::Write { release: true },
    Kind::Read { acquire: false },
    Kind::Read { acquire: true },
    Kind::Update,
];

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Write { release: bool },
    Read { acquire: bool },
    Update,
}

/// Result of an equivalence run.
#[derive(Clone, Debug, Default)]
pub struct EquivalenceReport {
    /// Candidates examined.
    pub candidates: usize,
    /// Candidates where both systems said "consistent".
    pub both_consistent: usize,
    /// Candidates where both systems said "inconsistent".
    pub both_inconsistent: usize,
    /// Counterexamples to Theorem C.5 (should stay empty). At most 8 kept.
    pub disagreements: Vec<C11State>,
}

impl EquivalenceReport {
    /// `true` iff no disagreement was found.
    pub fn agrees(&self) -> bool {
        self.disagreements.is_empty()
    }

    fn record(&mut self, state: &C11State) {
        self.candidates += 1;
        let (canonical, coherent) = theorem_c5_agrees(state);
        match (canonical, coherent) {
            (true, true) => self.both_consistent += 1,
            (false, false) => self.both_inconsistent += 1,
            _ => {
                if self.disagreements.len() < 8 {
                    self.disagreements.push(state.clone());
                }
            }
        }
    }
}

/// Enumerates restricted-growth strings of length `len` with at most
/// `max_labels` labels, calling `f` with each (labels are `0..`).
fn restricted_growth<F: FnMut(&[usize]) -> bool>(len: usize, max_labels: usize, f: &mut F) {
    fn rec<F: FnMut(&[usize]) -> bool>(
        buf: &mut Vec<usize>,
        len: usize,
        max_labels: usize,
        f: &mut F,
        stop: &mut bool,
    ) {
        if *stop {
            return;
        }
        if buf.len() == len {
            if !f(buf) {
                *stop = true;
            }
            return;
        }
        let next_fresh = buf.iter().copied().max().map_or(0, |m| m + 1);
        for label in 0..=next_fresh.min(max_labels - 1) {
            buf.push(label);
            rec(buf, len, max_labels, f, stop);
            buf.pop();
            if *stop {
                return;
            }
        }
    }
    let mut buf = Vec::with_capacity(len);
    let mut stop = false;
    rec(&mut buf, len, max_labels, f, &mut stop);
}

/// Enumerates every candidate execution within `cfg` (with symmetry
/// breaking) and calls `f` on each; `f` returns `false` to stop. Returns
/// the number of candidates visited.
pub fn enumerate_candidates<F: FnMut(&C11State) -> bool>(cfg: &CandidateConfig, mut f: F) -> usize {
    let k = cfg.events;
    let mut count = 0usize;
    let mut stop = false;
    restricted_growth(k, cfg.max_threads, &mut |tids| {
        // kinds: odometer over KINDS^k
        let mut kind_pick = vec![0usize; k];
        loop {
            let kinds: Vec<Kind> = kind_pick.iter().map(|&i| KINDS[i]).collect();
            restricted_growth(k, cfg.max_vars, &mut |vars| {
                build_candidates(tids, &kinds, vars, &mut |state| {
                    count += 1;
                    if !f(state) {
                        stop = true;
                    }
                    !stop
                });
                !stop
            });
            if stop {
                return false;
            }
            // advance kinds odometer
            let mut i = 0;
            loop {
                if i == k {
                    return true; // done with this thread assignment
                }
                kind_pick[i] += 1;
                if kind_pick[i] < KINDS.len() {
                    break;
                }
                kind_pick[i] = 0;
                i += 1;
            }
        }
    });
    count
}

/// Builds all candidate executions for a fixed skeleton (threads, kinds,
/// variables): every rf wiring × every mo permutation.
fn build_candidates<F: FnMut(&C11State) -> bool>(
    tids: &[usize],
    kinds: &[Kind],
    vars: &[usize],
    f: &mut F,
) {
    let k = tids.len();
    let num_vars = vars.iter().copied().max().map_or(0, |m| m + 1);
    // Arena: init writes first (value 0), then the k events.
    // Non-init writes get distinct values 1, 2, ...
    let base = num_vars;
    let event_id = |i: usize| base + i;
    // Writers per variable: inits + non-init writes.
    let mut writers_of: Vec<Vec<usize>> = (0..num_vars).map(|v| vec![v]).collect();
    let mut wrvals = vec![0u32; base + k];
    let mut next_val = 1u32;
    for i in 0..k {
        if matches!(kinds[i], Kind::Write { .. } | Kind::Update) {
            writers_of[vars[i]].push(event_id(i));
            wrvals[event_id(i)] = next_val;
            next_val += 1;
        }
    }
    // Readers (reads + updates) and their candidate writers.
    let readers: Vec<usize> = (0..k)
        .filter(|&i| matches!(kinds[i], Kind::Read { .. } | Kind::Update))
        .collect();
    let reader_choices: Vec<Vec<usize>> = readers
        .iter()
        .map(|&i| {
            writers_of[vars[i]]
                .iter()
                .copied()
                .filter(|&w| w != event_id(i))
                .collect()
        })
        .collect();
    if reader_choices.iter().any(Vec::is_empty) && !readers.is_empty() {
        return;
    }
    // sb: inits before all; per-thread position order.
    let n = base + k;
    let mut sb = Relation::new(n);
    for v in 0..num_vars {
        for i in 0..k {
            sb.add(v, event_id(i));
        }
    }
    for i in 0..k {
        for j in (i + 1)..k {
            if tids[i] == tids[j] {
                sb.add(event_id(i), event_id(j));
            }
        }
    }
    // rf odometer.
    let mut rf_pick = vec![0usize; readers.len()];
    loop {
        let mut rf = Relation::new(n);
        let mut rdvals = vec![0u32; n];
        for (ri, &i) in readers.iter().enumerate() {
            let w = reader_choices[ri][rf_pick[ri]];
            rf.add(w, event_id(i));
            rdvals[event_id(i)] = wrvals[w];
        }
        // Build the event list with concrete actions.
        let mut events: Vec<Event> = (0..num_vars)
            .map(|v| Event::init_write(VarId(v as u8), 0))
            .collect();
        for i in 0..k {
            let var = VarId(vars[i] as u8);
            let tid = ThreadId(tids[i] as u8 + 1);
            let action = match kinds[i] {
                Kind::Write { release } => Action::Wr {
                    var,
                    val: wrvals[event_id(i)],
                    release,
                },
                Kind::Read { acquire } => Action::Rd {
                    var,
                    val: rdvals[event_id(i)],
                    acquire,
                },
                Kind::Update => Action::Upd {
                    var,
                    old: rdvals[event_id(i)],
                    new: wrvals[event_id(i)],
                },
            };
            events.push(Event::new(tid, action));
        }
        // mo: per-variable permutations of the non-init writes.
        let per_var: Vec<Vec<usize>> = (0..num_vars).map(|v| writers_of[v][1..].to_vec()).collect();
        let mut stop = false;
        enumerate_mo_product(&per_var, n, &mut |mo| {
            let state = C11State::from_parts(events.clone(), sb.clone(), rf.clone(), mo.clone());
            if !f(&state) {
                stop = true;
            }
            !stop
        });
        if stop {
            return;
        }
        // advance rf odometer
        let mut i = 0;
        loop {
            if i == readers.len() {
                return;
            }
            rf_pick[i] += 1;
            if rf_pick[i] < reader_choices[i].len() {
                break;
            }
            rf_pick[i] = 0;
            i += 1;
        }
        if readers.is_empty() {
            return;
        }
    }
}

/// Product over variables of permutations of their non-init writes; mo is
/// transitively closed by construction and has inits first.
fn enumerate_mo_product<F: FnMut(&Relation) -> bool>(per_var: &[Vec<usize>], n: usize, f: &mut F) {
    fn rec<F: FnMut(&Relation) -> bool>(
        per_var: &[Vec<usize>],
        v: usize,
        acc: Relation,
        f: &mut F,
        stop: &mut bool,
    ) {
        if *stop {
            return;
        }
        if v == per_var.len() {
            if !f(&acc) {
                *stop = true;
            }
            return;
        }
        permutations(&per_var[v], &mut |perm| {
            let mut mo = acc.clone();
            for &w in perm {
                mo.add(v, w); // init write of var v has id v
            }
            for a in 0..perm.len() {
                for b in (a + 1)..perm.len() {
                    mo.add(perm[a], perm[b]);
                }
            }
            rec(per_var, v + 1, mo, f, stop);
            !*stop
        });
    }
    let mut stop = false;
    rec(per_var, 0, Relation::new(n), f, &mut stop);
}

fn permutations<F: FnMut(&[usize]) -> bool>(items: &[usize], f: &mut F) {
    fn rec<F: FnMut(&[usize]) -> bool>(
        rem: &mut Vec<usize>,
        pre: &mut Vec<usize>,
        f: &mut F,
        stop: &mut bool,
    ) {
        if *stop {
            return;
        }
        if rem.is_empty() {
            if !f(pre) {
                *stop = true;
            }
            return;
        }
        for i in 0..rem.len() {
            let x = rem.remove(i);
            pre.push(x);
            rec(rem, pre, f, stop);
            pre.pop();
            rem.insert(i, x);
            if *stop {
                return;
            }
        }
    }
    let mut rem = items.to_vec();
    let mut pre = Vec::new();
    let mut stop = false;
    rec(&mut rem, &mut pre, f, &mut stop);
}

/// Exhaustive Theorem C.5 check over all candidates within `cfg`.
pub fn equivalence_check(cfg: &CandidateConfig) -> EquivalenceReport {
    let mut report = EquivalenceReport::default();
    enumerate_candidates(cfg, |state| {
        debug_assert!(is_candidate_execution(state));
        report.record(state);
        true
    });
    report
}

/// Generates one random candidate execution of `events` non-init events.
pub fn random_candidate(
    rng: &mut StdRng,
    events: usize,
    max_threads: usize,
    max_vars: usize,
) -> Option<C11State> {
    let k = events;
    let tids: Vec<usize> = (0..k).map(|_| rng.gen_range(0..max_threads)).collect();
    let kinds: Vec<Kind> = (0..k)
        .map(|_| KINDS[rng.gen_range(0..KINDS.len())])
        .collect();
    let vars: Vec<usize> = (0..k).map(|_| rng.gen_range(0..max_vars)).collect();
    let num_vars = max_vars;
    let base = num_vars;
    let event_id = |i: usize| base + i;
    let mut writers_of: Vec<Vec<usize>> = (0..num_vars).map(|v| vec![v]).collect();
    let mut wrvals = vec![0u32; base + k];
    let mut next_val = 1;
    for i in 0..k {
        if matches!(kinds[i], Kind::Write { .. } | Kind::Update) {
            writers_of[vars[i]].push(event_id(i));
            wrvals[event_id(i)] = next_val;
            next_val += 1;
        }
    }
    let n = base + k;
    let mut rf = Relation::new(n);
    let mut rdvals = vec![0u32; n];
    for i in 0..k {
        if matches!(kinds[i], Kind::Read { .. } | Kind::Update) {
            let choices: Vec<usize> = writers_of[vars[i]]
                .iter()
                .copied()
                .filter(|&w| w != event_id(i))
                .collect();
            if choices.is_empty() {
                return None;
            }
            let w = choices[rng.gen_range(0..choices.len())];
            rf.add(w, event_id(i));
            rdvals[event_id(i)] = wrvals[w];
        }
    }
    let mut sb = Relation::new(n);
    for v in 0..num_vars {
        for i in 0..k {
            sb.add(v, event_id(i));
        }
    }
    for i in 0..k {
        for j in (i + 1)..k {
            if tids[i] == tids[j] {
                sb.add(event_id(i), event_id(j));
            }
        }
    }
    let mut mo = Relation::new(n);
    for (v, writers) in writers_of.iter().enumerate().take(num_vars) {
        let mut perm = writers[1..].to_vec();
        // Fisher-Yates
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for &w in &perm {
            mo.add(v, w);
        }
        for a in 0..perm.len() {
            for b in (a + 1)..perm.len() {
                mo.add(perm[a], perm[b]);
            }
        }
    }
    let mut events_vec: Vec<Event> = (0..num_vars)
        .map(|v| Event::init_write(VarId(v as u8), 0))
        .collect();
    for i in 0..k {
        let var = VarId(vars[i] as u8);
        let tid = ThreadId(tids[i] as u8 + 1);
        let action = match kinds[i] {
            Kind::Write { release } => Action::Wr {
                var,
                val: wrvals[event_id(i)],
                release,
            },
            Kind::Read { acquire } => Action::Rd {
                var,
                val: rdvals[event_id(i)],
                acquire,
            },
            Kind::Update => Action::Upd {
                var,
                old: rdvals[event_id(i)],
                new: wrvals[event_id(i)],
            },
        };
        events_vec.push(Event::new(tid, action));
    }
    Some(C11State::from_parts(events_vec, sb, rf, mo))
}

/// Sampled Theorem C.5 check at a given size (covers sizes beyond the
/// exhaustive bound, like the paper's size-7 Alloy runs).
pub fn equivalence_sample(
    seed: u64,
    events: usize,
    max_threads: usize,
    max_vars: usize,
    samples: usize,
) -> EquivalenceReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = EquivalenceReport::default();
    let mut produced = 0;
    let mut attempts = 0;
    while produced < samples && attempts < samples * 20 {
        attempts += 1;
        if let Some(state) = random_candidate(&mut rng, events, max_threads, max_vars) {
            debug_assert!(is_candidate_execution(&state));
            report.record(&state);
            produced += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::{coherence_inclusions, eco_closed_form, is_weakly_canonical_consistent};

    #[test]
    fn exhaustive_size_2_equivalence() {
        let cfg = CandidateConfig {
            events: 2,
            max_threads: 2,
            max_vars: 2,
        };
        let report = equivalence_check(&cfg);
        assert!(report.candidates > 50, "got {}", report.candidates);
        assert!(
            report.agrees(),
            "Theorem C.5 disagreement: {:?}",
            report.disagreements
        );
        assert!(report.both_consistent > 0);
        assert!(report.both_inconsistent > 0);
    }

    #[test]
    fn exhaustive_size_3_equivalence() {
        let cfg = CandidateConfig {
            events: 3,
            max_threads: 2,
            max_vars: 2,
        };
        let report = equivalence_check(&cfg);
        assert!(report.agrees(), "{:?}", report.disagreements);
        assert!(report.candidates > 1000);
    }

    #[test]
    fn sampled_size_6_equivalence() {
        let report = equivalence_sample(0xC11, 6, 3, 2, 300);
        assert!(report.agrees(), "{:?}", report.disagreements);
        assert!(report.candidates >= 250);
    }

    #[test]
    fn every_candidate_is_a_candidate_execution() {
        let cfg = CandidateConfig {
            events: 2,
            max_threads: 2,
            max_vars: 1,
        };
        enumerate_candidates(&cfg, |s| {
            assert!(is_candidate_execution(s), "{s:?}");
            true
        });
    }

    #[test]
    fn lemma_c9_closed_form_on_consistent_candidates() {
        // On UPD-satisfying candidates, eco equals its closed form.
        let cfg = CandidateConfig {
            events: 3,
            max_threads: 2,
            max_vars: 1,
        };
        let mut checked = 0;
        enumerate_candidates(&cfg, |s| {
            if is_weakly_canonical_consistent(s) {
                assert_eq!(&eco_closed_form(s), s.eco(), "Lemma C.9 on {s:?}");
                assert!(coherence_inclusions(s).is_ok(), "Lemma C.8 on {s:?}");
                checked += 1;
            }
            true
        });
        assert!(checked > 100);
    }

    #[test]
    fn random_candidates_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut made = 0;
        for _ in 0..100 {
            if let Some(s) = random_candidate(&mut rng, 5, 3, 2) {
                assert!(is_candidate_execution(&s));
                made += 1;
            }
        }
        assert!(made > 50);
    }
}
