//! Peterson's mutual-exclusion algorithm under release-acquire C11
//! (Algorithm 1) and its verification (Theorem 5.8, invariants (4)–(10),
//! Lemma D.1).
//!
//! The paper proves the invariants by hand over the proof rules; here the
//! same invariants are *model-checked*: every reachable configuration of
//! the operational semantics (bounded by an event budget, since the
//! algorithm loops forever) is tested against each invariant, and the
//! mutual-exclusion theorem is checked directly.

use crate::assertions::{determinate_value, update_only, variable_order};
use c11_core::config::Config;
use c11_core::model::RaModel;
use c11_explore::{ExploreConfig, Explorer, Stats};
use c11_lang::{parse_program, Prog, ThreadId, VarId};
use std::time::Instant;

/// Line numbers follow Algorithm 1: 2 = raise flag, 3 = swap turn,
/// 4 = await, 5 = critical section, 6 = lower flag.
///
/// The guard reads the other flag with *acquire* and `turn` relaxed, and
/// short-circuits exactly like the paper's two-test treatment.
pub fn peterson_program() -> Prog {
    parse_program(
        "vars flag1 flag2 turn=1;
         thread t1 {
           while (true) {
             2: flag1 := true;
             3: turn.swap(2);
             4: while (acq(flag2) == 1 && turn == 2) { skip; }
             5: skip;
             6: flag1 :=R false;
           }
         }
         thread t2 {
           while (true) {
             2: flag2 := true;
             3: turn.swap(1);
             4: while (acq(flag1) == 1 && turn == 1) { skip; }
             5: skip;
             6: flag2 :=R false;
           }
         }",
    )
    .expect("Peterson source parses")
}

/// Verdict of the bounded Peterson verification.
#[derive(Clone, Debug)]
pub struct PetersonReport {
    /// Exploration stats (shared reporting vocabulary). `stats.truncated`
    /// is always true — the algorithm loops forever; the event bound
    /// controls how many lock rounds and spin iterations are covered.
    pub stats: Stats,
    /// Mutual exclusion (Theorem 5.8) held in every visited configuration.
    pub mutual_exclusion: bool,
    /// Invariants (4)–(10) held in every visited configuration; violations
    /// are listed by invariant label.
    pub invariant_failures: Vec<String>,
}

/// The other thread (`t̂` in the paper).
fn hat(t: ThreadId) -> ThreadId {
    ThreadId(3 - t.0)
}

/// Context for evaluating the invariants on a configuration.
pub struct Vars {
    /// `flag1`, `flag2`.
    flag: [VarId; 2],
    /// `turn`.
    turn: VarId,
}

impl Vars {
    /// Looks up the three Peterson variables in a program.
    pub fn of(prog: &Prog) -> Vars {
        Vars {
            flag: [prog.var("flag1").unwrap(), prog.var("flag2").unwrap()],
            turn: prog.var("turn").unwrap(),
        }
    }

    fn flag_of(&self, t: ThreadId) -> VarId {
        self.flag[t.0 as usize - 1]
    }
}

/// Evaluates invariants (4)–(10) of §5.2 on a configuration, returning the
/// labels of the failing ones.
pub fn invariant_failures(cfg: &Config<RaModel>, vars: &Vars) -> Vec<String> {
    let mut fails = Vec::new();
    let s = &cfg.mem;
    let pc = |t: ThreadId| cfg.pc(t).unwrap_or(0);
    let dv = |t: ThreadId, x: VarId| determinate_value(s, t, x);

    // (4) turn is update-only.
    if !update_only(s, vars.turn) {
        fails.push("(4) turn update-only".to_string());
    }
    // (5) turn =_1 2 ∨ turn =_2 1.
    if !(dv(ThreadId(1), vars.turn) == Some(2) || dv(ThreadId(2), vars.turn) == Some(1)) {
        fails.push("(5) turn =_1 2 ∨ turn =_2 1".to_string());
    }
    for t in [ThreadId(1), ThreadId(2)] {
        let th = hat(t);
        let pct = pc(t);
        let pcth = pc(th);
        // (6) pc_t ∈ {3,4,5,6} ⇒ flag_t =_t true
        if (3..=6).contains(&pct) && dv(t, vars.flag_of(t)) != Some(1) {
            fails.push(format!("(6) t={t:?}"));
        }
        // (7) pc_t ∈ {4,5,6} ⇒ flag_t → turn
        if (4..=6).contains(&pct) && !variable_order(s, vars.flag_of(t), vars.turn) {
            fails.push(format!("(7) t={t:?}"));
        }
        // (8) pc_t,pc_t̂ ∈ {4,5,6} ⇒ flag_t̂ =_t true ∨ turn =_t̂ t
        if (4..=6).contains(&pct)
            && (4..=6).contains(&pcth)
            && !(dv(t, vars.flag_of(th)) == Some(1) || dv(th, vars.turn) == Some(t.0 as u32))
        {
            fails.push(format!("(8) t={t:?}"));
        }
        // (9) pc_t = 5 ∧ pc_t̂ ∈ {4,5,6} ⇒ turn =_t̂ t
        if pct == 5 && (4..=6).contains(&pcth) && dv(th, vars.turn) != Some(t.0 as u32) {
            fails.push(format!("(9) t={t:?}"));
        }
        // (10) pc_t = 2 ⇒ flag_t =_t false
        if pct == 2 && dv(t, vars.flag_of(t)) != Some(0) {
            fails.push(format!("(10) t={t:?}"));
        }
    }
    fails
}

/// Model-checks Peterson within an event budget.
pub fn check_peterson(max_events: usize) -> PetersonReport {
    let prog = peterson_program();
    let vars = Vars::of(&prog);
    let mut mutual_exclusion = true;
    let mut failures: Vec<String> = Vec::new();
    let explorer = Explorer::new(RaModel);
    let t0 = Instant::now();
    let res = explorer.explore_invariant(
        &prog,
        ExploreConfig::default()
            .max_events(max_events)
            .record_traces(false),
        |cfg: &Config<RaModel>| {
            if cfg.pc(ThreadId(1)) == Some(5) && cfg.pc(ThreadId(2)) == Some(5) {
                mutual_exclusion = false;
            }
            let fs = invariant_failures(cfg, &vars);
            let ok = fs.is_empty();
            failures.extend(fs);
            ok
        },
    );
    PetersonReport {
        stats: res.stats(t0.elapsed()),
        mutual_exclusion,
        invariant_failures: {
            failures.sort();
            failures.dedup();
            failures
        },
    }
}

/// A deliberately broken Peterson variant (all annotations relaxed; the
/// swap replaced by a plain write): mutual exclusion fails. Used as a
/// negative control (the checker *can* find the bug the annotations
/// prevent).
pub fn peterson_relaxed_program() -> Prog {
    parse_program(
        "vars flag1 flag2 turn=1;
         thread t1 {
           while (true) {
             2: flag1 := true;
             3: turn := 2;
             4: while (flag2 == 1 && turn == 2) { skip; }
             5: skip;
             6: flag1 := false;
           }
         }
         thread t2 {
           while (true) {
             2: flag2 := true;
             3: turn := 1;
             4: while (flag1 == 1 && turn == 1) { skip; }
             5: skip;
             6: flag2 := false;
           }
         }",
    )
    .expect("relaxed Peterson parses")
}

/// Like [`mutual_exclusion_holds`], but returns the counterexample trace
/// (thread/label per step) when mutual exclusion fails.
pub fn find_mutex_violation(prog: &Prog, max_events: usize) -> Option<Vec<c11_explore::TraceStep>> {
    let explorer = Explorer::new(RaModel);
    let res = explorer.explore_invariant(
        &prog.clone(),
        ExploreConfig::default().max_events(max_events),
        |cfg: &Config<RaModel>| !(cfg.pc(ThreadId(1)) == Some(5) && cfg.pc(ThreadId(2)) == Some(5)),
    );
    res.violations.into_iter().next().map(|(_, trace)| trace)
}

/// Bounded mutual-exclusion check for an arbitrary 2-thread program using
/// pc = 5 as the critical-section marker. Returns `(holds, states)`.
pub fn mutual_exclusion_holds(prog: &Prog, max_events: usize) -> (bool, usize) {
    let explorer = Explorer::new(RaModel);
    let mut holds = true;
    let res = explorer.explore_invariant(
        &prog.clone(),
        ExploreConfig::default()
            .max_events(max_events)
            .record_traces(false),
        |cfg: &Config<RaModel>| {
            let bad = cfg.pc(ThreadId(1)) == Some(5) && cfg.pc(ThreadId(2)) == Some(5);
            if bad {
                holds = false;
            }
            !bad
        },
    );
    (holds, res.unique)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peterson_parses_with_labels() {
        let prog = peterson_program();
        assert_eq!(prog.num_threads(), 2);
        assert_eq!(prog.thread(ThreadId(1)).pc(), Some(2));
        assert_eq!(prog.inits, vec![0, 0, 1]);
    }

    #[test]
    fn initial_configuration_satisfies_invariants() {
        let prog = peterson_program();
        let vars = Vars::of(&prog);
        let cfg = Config::initial(&RaModel, &prog);
        assert!(invariant_failures(&cfg, &vars).is_empty());
    }

    #[test]
    fn peterson_small_budget() {
        // Small smoke budget; the full-budget run lives in the integration
        // suite (tests/peterson.rs) and the bench (E11).
        let report = check_peterson(12);
        assert!(report.mutual_exclusion, "mutual exclusion violated");
        assert!(
            report.invariant_failures.is_empty(),
            "invariant failures: {:?}",
            report.invariant_failures
        );
        assert!(report.stats.unique > 100);
    }

    #[test]
    fn relaxed_peterson_violates_mutual_exclusion() {
        let prog = peterson_relaxed_program();
        let (holds, _) = mutual_exclusion_holds(&prog, 16);
        assert!(!holds, "fully-relaxed Peterson must fail");
    }
}
