//! The inference rules of Figure 4, as executable soundness checks.
//!
//! Each rule has the shape *premises over `(σ, m, e)` imply a conclusion
//! over `σ'`*, for a transition `(_, σ) ⟹m,e (_, σ')` of the RA semantics.
//! [`check_rules_on_transition`] instantiates every rule at every variable
//! pair and thread and reports instances whose premises hold but whose
//! conclusion fails — soundness demands the result stays empty (paper
//! Appendix B; experiment E9 sweeps this over whole programs).

use crate::assertions::{determinate_value, variable_order};
use c11_core::event::EventId;
use c11_core::state::C11State;
use c11_lang::{ThreadId, VarId};

/// The rules of Figure 4 (Init is a property of `σ₀`, checked separately).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `x =σ₀_t wrval(σ₀.last(x))` in initial states.
    Init,
    /// A write to the last modification makes its value determinate for
    /// the writer.
    ModLast,
    /// Synchronising with the last write of `y` copies `x =_t v` to the
    /// acquiring thread when `x → y`.
    Transfer,
    /// An update of `y` (reading a release write) preserves `x → y`.
    UOrd,
    /// Non-writes to `x` preserve `x =_t v`.
    NoMod,
    /// An acquire read of the last (release) write makes its value
    /// determinate for the reader.
    AcqRd,
    /// A write to `y` by a thread with `x =_t v` establishes `x → y`.
    WOrd,
    /// Non-writes to `x`, `y` preserve `x → y`.
    NoModOrd,
}

/// A rule instance whose premises held but whose conclusion failed.
#[derive(Clone, Debug)]
pub struct RuleViolation {
    /// The violated rule.
    pub rule: Rule,
    /// Instantiation detail for debugging.
    pub detail: String,
}

/// Checks every Figure-4 rule on one RA transition `(σ, m, e, σ')`.
///
/// `m` is the observed write (in `σ`'s arena, which `σ'` extends), `e` the
/// appended event (id in `σ'`). `vars` and `threads` bound the
/// instantiation space.
pub fn check_rules_on_transition(
    sigma: &C11State,
    m: EventId,
    e: EventId,
    sigma2: &C11State,
    vars: &[VarId],
    threads: &[ThreadId],
) -> Vec<RuleViolation> {
    let mut out = Vec::new();
    let ev = sigma2.event(e);
    let e_is_write = ev.is_write();
    let e_is_update = ev.is_update();
    let e_is_acq_read = ev.is_read() && ev.is_acquire();
    let e_var = ev.var();
    let e_tid = ev.tid;
    let m_ev = sigma.event(m);
    let sw2 = sigma2.sw();

    let mut fail = |rule: Rule, detail: String| {
        out.push(RuleViolation { rule, detail });
    };

    for &x in vars {
        // ModLast: x = var(e), e ∈ Wr|x, m = σ.last(x)
        //          ⇒ x =σ'_{tid(e)} wrval(e)
        if e_is_write && e_var == x && sigma.last(x) == Some(m) {
            let want = ev.wrval();
            if determinate_value(sigma2, e_tid, x) != want {
                fail(Rule::ModLast, format!("x={x:?} e={e} expected {want:?}"));
            }
        }

        // AcqRd: x = var(e), e ∈ RdA|x, m ∈ WrR|x, m = σ.last(x)
        //        ⇒ x =σ'_{tid(e)} rdval(e)
        //
        // Updates are excluded although RdA ⊇ U in the paper's notation:
        // the Appendix B proof of this rule relies on σ'.mo|x = σ.mo|x,
        // which only holds for pure reads. For an update the conclusion is
        // supplied by ModLast (with wrval(e), not rdval(e)).
        if e_is_acq_read
            && !e_is_update
            && e_var == x
            && m_ev.is_release()
            && m_ev.var() == x
            && sigma.last(x) == Some(m)
        {
            let want = ev.rdval();
            if determinate_value(sigma2, e_tid, x) != want {
                fail(Rule::AcqRd, format!("x={x:?} e={e} expected {want:?}"));
            }
        }

        // NoMod: e ∉ Wr|x, x =σ_t v ⇒ x =σ'_t v
        if !(e_is_write && e_var == x) {
            for &t in threads {
                if let Some(v) = determinate_value(sigma, t, x) {
                    if determinate_value(sigma2, t, x) != Some(v) {
                        fail(Rule::NoMod, format!("x={x:?} t={t:?} v={v}"));
                    }
                }
            }
        }

        for &y in vars {
            if x == y {
                continue;
            }
            let xy_before = variable_order(sigma, x, y);

            // Transfer: y = var(e), x →σ y, x =σ_t v, (m,e) ∈ sw(σ'),
            //           m = σ.last(y) ⇒ x =σ'_{tid(e)} v
            if e_var == y && xy_before && sw2.contains(m, e) && sigma.last(y) == Some(m) {
                for &t in threads {
                    if let Some(v) = determinate_value(sigma, t, x) {
                        if determinate_value(sigma2, e_tid, x) != Some(v) {
                            fail(
                                Rule::Transfer,
                                format!("x={x:?} y={y:?} t={t:?} v={v} e={e}"),
                            );
                        }
                    }
                }
            }

            // UOrd: m ∈ WrR|y, e ∈ U|y, x →σ y ⇒ x →σ' y
            if m_ev.is_release()
                && m_ev.var() == y
                && e_is_update
                && e_var == y
                && xy_before
                && !variable_order(sigma2, x, y)
            {
                fail(Rule::UOrd, format!("x={x:?} y={y:?} e={e}"));
            }

            // WOrd: x ≠ y, e ∈ Wr|y, x =σ_{tid(e)} v, m = σ.last(y)
            //       ⇒ x →σ' y
            if e_is_write
                && e_var == y
                && sigma.last(y) == Some(m)
                && determinate_value(sigma, e_tid, x).is_some()
                && !variable_order(sigma2, x, y)
            {
                fail(Rule::WOrd, format!("x={x:?} y={y:?} e={e}"));
            }

            // NoModOrd: e ∉ Wr|{x,y}, x →σ y ⇒ x →σ' y
            if !(e_is_write && (e_var == x || e_var == y))
                && xy_before
                && !variable_order(sigma2, x, y)
            {
                fail(Rule::NoModOrd, format!("x={x:?} y={y:?} e={e}"));
            }
        }
    }
    out
}

/// The Init rule: in an initial state, every variable is determinate (with
/// its initial value) for every thread.
pub fn check_init_rule(
    state: &C11State,
    vars: &[VarId],
    threads: &[ThreadId],
) -> Vec<RuleViolation> {
    let mut out = Vec::new();
    for &x in vars {
        let want = state.last(x).and_then(|w| state.event(w).wrval());
        for &t in threads {
            if determinate_value(state, t, x) != want {
                out.push(RuleViolation {
                    rule: Rule::Init,
                    detail: format!("x={x:?} t={t:?} expected {want:?}"),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use c11_core::semantics::{read_transitions, update_transitions, write_transitions};

    const X: VarId = VarId(0);
    const Y: VarId = VarId(1);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const VARS: [VarId; 2] = [X, Y];
    const THREADS: [ThreadId; 2] = [T1, T2];

    fn assert_sound(sigma: &C11State, m: EventId, e: EventId, sigma2: &C11State) {
        let v = check_rules_on_transition(sigma, m, e, sigma2, &VARS, &THREADS);
        assert!(v.is_empty(), "rule violations: {v:?}");
    }

    #[test]
    fn init_rule_holds() {
        let s = C11State::initial(&[4, 5]);
        assert!(check_init_rule(&s, &VARS, &THREADS).is_empty());
    }

    #[test]
    fn rules_sound_on_simple_writes() {
        let s = C11State::initial(&[0, 0]);
        for w in write_transitions(&s, T1, X, 1, false) {
            assert_sound(&s, w.observed, w.event, &w.state);
            for w2 in write_transitions(&w.state, T1, Y, 2, true) {
                assert_sound(&w.state, w2.observed, w2.event, &w2.state);
            }
        }
    }

    #[test]
    fn rules_sound_on_message_passing_shape() {
        // d := 5 ; f :=R 1 (t1);  rdA(f) (t2): the Transfer instance fires
        // and must hold.
        let s = C11State::initial(&[0, 0]);
        let wd = &write_transitions(&s, T1, X, 5, false)[0];
        let wf = &write_transitions(&wd.state, T1, Y, 1, true)[0];
        // WOrd premise: d =_{t1} 5 and wf writes last of y ⇒ d →σ' f.
        assert!(variable_order(&wf.state, X, Y));
        for r in read_transitions(&wf.state, T2, Y, true) {
            assert_sound(&wf.state, r.observed, r.event, &r.state);
            if r.observed == wf.event {
                // Transfer happened: t2 now knows d = 5.
                assert_eq!(determinate_value(&r.state, T2, X), Some(5));
            }
        }
    }

    #[test]
    fn rules_sound_on_updates() {
        let s = C11State::initial(&[0, 0]);
        let wd = &write_transitions(&s, T1, X, 5, false)[0];
        let wf = &write_transitions(&wd.state, T1, Y, 1, true)[0];
        for u in update_transitions(&wf.state, T2, Y, 9) {
            assert_sound(&wf.state, u.observed, u.event, &u.state);
        }
    }

    #[test]
    fn rules_sound_on_racy_reads() {
        // Reads that do NOT synchronise with the last write must not
        // create spurious determinate values — and the rules must still be
        // sound (their premises simply do not fire).
        let s = C11State::initial(&[0, 0]);
        let w = &write_transitions(&s, T1, X, 1, false)[0];
        for r in read_transitions(&w.state, T2, X, false) {
            assert_sound(&w.state, r.observed, r.event, &r.state);
        }
    }

    #[test]
    fn exhaustive_small_program_soundness() {
        // Quantify over all transitions of a 2-thread, 4-action program
        // by brute-force expansion (depth 4).
        fn expand(sigma: &C11State, depth: usize) {
            if depth == 0 {
                return;
            }
            let mut all = Vec::new();
            all.extend(write_transitions(sigma, T1, X, 1, true));
            all.extend(update_transitions(sigma, T2, X, 2));
            all.extend(read_transitions(sigma, T2, X, true));
            all.extend(write_transitions(sigma, T2, Y, 3, false));
            for tr in all {
                let v = check_rules_on_transition(
                    sigma,
                    tr.observed,
                    tr.event,
                    &tr.state,
                    &VARS,
                    &THREADS,
                );
                assert!(v.is_empty(), "{v:?} at depth {depth}");
                expand(&tr.state, depth - 1);
            }
        }
        let s = C11State::initial(&[0, 0]);
        expand(&s, 3);
    }
}
