//! Further case studies in the paper's §5 style, beyond Peterson.
//!
//! * **Test-and-set spinlock** — built from the RA `swap` (using the
//!   atomic-exchange result `r <- l.swap(1)`). We verify bounded mutual
//!   exclusion and the §5-style *data-protection* invariant: the lock
//!   holder has a determinate view of the protected variable. The
//!   invariant needs the *release* unlock (an acquire swap reading a
//!   relaxed unlock gets no `sw` edge) — the checker shows exactly that.
//! * **Naive flag mutex** (Dekker's first approximation / the SB shape):
//!   raise your flag, check the other's, enter if clear. Correct under
//!   SC; broken under RA even with release/acquire annotations, because
//!   forbidding store buffering needs SC atomics (outside the RAR
//!   fragment). A negative control showing the checker finds real bugs.

use crate::assertions::determinate_value;
use c11_core::config::Config;
use c11_core::model::{RaModel, ScModel};
use c11_explore::{ExploreConfig, Explorer, Stats};
use c11_lang::{parse_program, Prog, ThreadId};
use std::time::Instant;

/// A two-thread spinlock protecting a counter `d`. Line 5 is the critical
/// section (`r1 <- d; d := r1 + 1`).
///
/// `release_unlock` selects `l :=R 0` (correct) vs `l := 0` (publishes
/// nothing; the data invariant fails).
pub fn spinlock_program(release_unlock: bool) -> Prog {
    let unlock = if release_unlock { ":=R" } else { ":=" };
    let thread = |_t: u8| {
        format!(
            "while (true) {{
               2: do {{ r0 <- l.swap(1); }} while (r0 == 1);
               5: r1 <- d;
               5: d := r1 + 1;
               6: l {unlock} 0;
             }}"
        )
    };
    parse_program(&format!(
        "vars l d;\nthread t1 {{ {} }}\nthread t2 {{ {} }}",
        thread(1),
        thread(2)
    ))
    .expect("spinlock parses")
}

/// Verdict of the spinlock verification.
#[derive(Clone, Debug)]
pub struct SpinlockReport {
    /// Exploration stats (shared reporting vocabulary); `stats.truncated`
    /// is always true — the lock loops forever.
    pub stats: Stats,
    /// No configuration had both threads at line 5.
    pub mutual_exclusion: bool,
    /// In every configuration with a thread at line 5 *holding the lock*,
    /// that thread had a determinate view of `d` (the §5-style lock
    /// invariant). Holds with a release unlock; fails relaxed.
    pub data_protected: bool,
}

/// Model-checks the spinlock within an event budget.
pub fn check_spinlock(max_events: usize, release_unlock: bool) -> SpinlockReport {
    let prog = spinlock_program(release_unlock);
    let d = prog.var("d").unwrap();
    let mut mutual_exclusion = true;
    let mut data_protected = true;
    let t0 = Instant::now();
    let res = Explorer::new(RaModel).explore_invariant(
        &prog,
        ExploreConfig::default()
            .max_events(max_events)
            .record_traces(false),
        |cfg: &Config<RaModel>| {
            let in_cs = |t: ThreadId| cfg.pc(t) == Some(5);
            if in_cs(ThreadId(1)) && in_cs(ThreadId(2)) {
                mutual_exclusion = false;
            }
            for t in [ThreadId(1), ThreadId(2)] {
                if in_cs(t) && determinate_value(&cfg.mem, t, d).is_none() {
                    data_protected = false;
                }
            }
            mutual_exclusion
        },
    );
    SpinlockReport {
        stats: res.stats(t0.elapsed()),
        mutual_exclusion,
        data_protected,
    }
}

/// The naive flag mutex (store-buffering shape): raise flag, check the
/// other, enter if clear. `annotated` adds release writes and acquire
/// reads — which does *not* rescue it in the RAR fragment.
pub fn naive_flag_mutex(annotated: bool) -> Prog {
    let (w, rd_open, rd_close) = if annotated {
        (":=R", "acq(", ")")
    } else {
        (":=", "", "")
    };
    let thread = |mine: u8, theirs: u8| {
        format!(
            "2: flag{mine} {w} 1;
             4: r0 <- {rd_open}flag{theirs}{rd_close};
             if (r0 == 0) {{ 5: skip; }}
             6: flag{mine} {w} 0;"
        )
    };
    parse_program(&format!(
        "vars flag1 flag2;\nthread t1 {{ {} }}\nthread t2 {{ {} }}",
        thread(1, 2),
        thread(2, 1)
    ))
    .expect("naive mutex parses")
}

/// Bounded mutual-exclusion check (pc = 5 marks the critical section)
/// under RA. Returns `(holds, states)`.
pub fn naive_mutex_holds_ra(prog: &Prog, max_events: usize) -> (bool, usize) {
    let mut holds = true;
    let res = Explorer::new(RaModel).explore_invariant(
        prog,
        ExploreConfig::default()
            .max_events(max_events)
            .record_traces(false),
        |cfg: &Config<RaModel>| {
            let bad = cfg.pc(ThreadId(1)) == Some(5) && cfg.pc(ThreadId(2)) == Some(5);
            if bad {
                holds = false;
            }
            !bad
        },
    );
    (holds, res.unique)
}

/// The same check under the SC baseline.
pub fn naive_mutex_holds_sc(prog: &Prog) -> bool {
    let mut holds = true;
    Explorer::new(ScModel).explore_invariant(
        prog,
        ExploreConfig::default(),
        |cfg: &Config<ScModel>| {
            let bad = cfg.pc(ThreadId(1)) == Some(5) && cfg.pc(ThreadId(2)) == Some(5);
            if bad {
                holds = false;
            }
            !bad
        },
    );
    holds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spinlock_with_release_unlock_is_correct() {
        let report = check_spinlock(16, true);
        assert!(report.mutual_exclusion, "TAS mutual exclusion");
        assert!(report.data_protected, "release unlock publishes d");
        assert!(report.stats.unique > 100);
    }

    #[test]
    fn spinlock_with_relaxed_unlock_leaks_data() {
        let report = check_spinlock(16, false);
        // Mutual exclusion still holds (the exchange itself is atomic)…
        assert!(report.mutual_exclusion);
        // …but the CS no longer sees the previous holder's writes.
        assert!(
            !report.data_protected,
            "relaxed unlock must break the data invariant"
        );
    }

    #[test]
    fn naive_mutex_broken_under_ra_even_annotated() {
        for annotated in [false, true] {
            let prog = naive_flag_mutex(annotated);
            let (holds, _) = naive_mutex_holds_ra(&prog, 14);
            assert!(!holds, "SB-shaped mutex must fail (annotated={annotated})");
        }
    }

    #[test]
    fn naive_mutex_correct_under_sc() {
        let prog = naive_flag_mutex(false);
        assert!(naive_mutex_holds_sc(&prog), "SC forbids the SB outcome");
    }
}
