//! The message-passing proof of Example 5.7, replayed mechanically.
//!
//! ```text
//! Init: f = 0 ∧ d = 0
//! thread 1: 1: d := 5;              thread 2: 1: while ¬fᴬ do skip;
//!           2: f :=R 1;                       2: r := d;
//! ```
//!
//! The paper's proof sketch: after thread 1's line 2, `d =_1 5 ∧ d → f`
//! (rules NoMod, ModLast, WOrd); the program invariant "any write of 1 to
//! `f` is thread 1's release and is `last(f)`" feeds the Transfer rule, so
//! when thread 2's acquire loop exits, `d =_2 5`. We model-check both the
//! assertion network and the end-to-end result.

use crate::assertions::{determinate_value, variable_order};
use c11_core::config::Config;
use c11_core::model::RaModel;
use c11_explore::{ExploreConfig, Explorer, Stats};
use c11_lang::{parse_program, Prog, RegId, ThreadId};
use std::time::Instant;

/// The message-passing program, with labels mirroring Example 5.7.
pub fn mp_program() -> Prog {
    parse_program(
        "vars d f;
         thread t1 { 1: d := 5; 2: f :=R 1; }
         thread t2 { 1: while (acq(f) == 0) { skip; } 2: r0 <- d; }",
    )
    .expect("MP source parses")
}

/// Report of the mechanical Example 5.7 check.
#[derive(Clone, Debug)]
pub struct MpReport {
    /// Exploration stats (shared reporting vocabulary).
    pub stats: Stats,
    /// The intermediate assertion `pc₁ done ⇒ d =_1 5 ∧ d → f` held
    /// everywhere.
    pub writer_assertions: bool,
    /// The Transfer conclusion `pc₂ = 2 ⇒ d =_2 5` held everywhere.
    pub reader_assertion: bool,
    /// Every terminated run ended with r0 = 5.
    pub end_to_end: bool,
}

/// Model-checks the Example 5.7 assertion network.
pub fn check_mp(max_events: usize) -> MpReport {
    let prog = mp_program();
    let d = prog.var("d").unwrap();
    let f = prog.var("f").unwrap();
    let explorer = Explorer::new(RaModel);
    let mut writer_assertions = true;
    let mut reader_assertion = true;
    let t0 = Instant::now();
    let res = explorer.explore_invariant(
        &prog,
        ExploreConfig::default()
            .max_events(max_events)
            .record_traces(false),
        |cfg: &Config<RaModel>| {
            let s = &cfg.mem;
            // Thread 1 finished both lines ⇔ its command terminated.
            if cfg.com(ThreadId(1)).is_terminated()
                && (determinate_value(s, ThreadId(1), d) != Some(5) || !variable_order(s, d, f))
            {
                writer_assertions = false;
            }
            // Thread 2 at line 2 ⇒ d =_2 5 (the Transfer conclusion).
            if cfg.pc(ThreadId(2)) == Some(2) && determinate_value(s, ThreadId(2), d) != Some(5) {
                reader_assertion = false;
            }
            writer_assertions && reader_assertion
        },
    );
    let end_to_end = res
        .final_register_states()
        .iter()
        .all(|snap| snap.get(ThreadId(2), RegId(0)) == Some(5));
    MpReport {
        stats: res.stats(t0.elapsed()),
        writer_assertions,
        reader_assertion,
        end_to_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_5_7_holds() {
        let report = check_mp(14);
        assert!(report.writer_assertions, "d =_1 5 ∧ d → f after line 2");
        assert!(report.reader_assertion, "d =_2 5 at line 2 of thread 2");
        assert!(report.end_to_end, "r0 = 5 in every terminated run");
        assert!(report.stats.unique > 50);
    }

    #[test]
    fn relaxed_flag_breaks_the_proof() {
        // Negative control: drop the release annotation; the reader
        // assertion fails (stale d = 0 becomes readable at line 2).
        let prog = parse_program(
            "vars d f;
             thread t1 { 1: d := 5; 2: f := 1; }
             thread t2 { 1: while (acq(f) == 0) { skip; } 2: r0 <- d; }",
        )
        .unwrap();
        let d = prog.var("d").unwrap();
        let explorer = Explorer::new(RaModel);
        let mut reader_assertion = true;
        explorer.explore_invariant(
            &prog,
            ExploreConfig::default().max_events(14),
            |cfg: &Config<RaModel>| {
                if cfg.pc(ThreadId(2)) == Some(2)
                    && determinate_value(&cfg.mem, ThreadId(2), d) != Some(5)
                {
                    reader_assertion = false;
                }
                true
            },
        );
        assert!(!reader_assertion);
    }
}
