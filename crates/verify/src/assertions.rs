//! Determinate-value and variable-ordering assertions (Definitions 5.1
//! and 5.5).

use c11_core::event::EventId;
use c11_core::obs::observable_writes;
use c11_core::state::C11State;
use c11_lang::{ThreadId, Val, VarId};
use c11_relations::BitSet;

/// The happens-before cone of thread `t` in `σ` (Appendix B):
/// `hbc(t) = I_σ ∪ { e | ∃e' . tid(e') = t ∧ (e, e') ∈ hb? }` — events that
/// are initialising, of `t` itself, or happen-before one of `t`'s events.
///
/// (The paper's §5 display types the side condition as `tid(e) = t`; the
/// accompanying prose and the Appendix B proofs make clear the bound event
/// is `e'`, which is what we implement.)
pub fn happens_before_cone(state: &C11State, t: ThreadId) -> BitSet {
    let hb_q = state.hb().reflexive_closure();
    let mut out = state.init_writes();
    let thread_events: Vec<EventId> = state.thread_events(t).collect();
    for e in state.ids() {
        if thread_events.iter().any(|&e2| hb_q.contains(e, e2)) {
            out.insert(e);
        }
    }
    out
}

/// The determinate-value assertion `x =σ_t v` (Definition 5.1): `v` is the
/// value of the mo-last write to `x`, and that write lies in `t`'s
/// happens-before cone. Returns the determinate value if the assertion
/// holds for *some* `v` (necessarily unique), else `None`.
///
/// ```
/// use c11_core::state::C11State;
/// use c11_core::{ThreadId, VarId};
/// use c11_verify::assertions::determinate_value;
///
/// let s = C11State::initial(&[7]);
/// // In σ₀ every thread knows the initial value (the Init rule).
/// assert_eq!(determinate_value(&s, ThreadId(1), VarId(0)), Some(7));
/// ```
pub fn determinate_value(state: &C11State, t: ThreadId, x: VarId) -> Option<Val> {
    let last = state.last(x)?;
    let v = state.event(last).wrval()?;
    happens_before_cone(state, t).contains(last).then_some(v)
}

///`x =σ_t v` for a specific value.
pub fn dv_holds(state: &C11State, t: ThreadId, x: VarId, v: Val) -> bool {
    determinate_value(state, t, x) == Some(v)
}

/// The variable-ordering assertion `x →σ y` (Definition 5.5):
/// `(σ.last(x), σ.last(y)) ∈ σ.hb`.
pub fn variable_order(state: &C11State, x: VarId, y: VarId) -> bool {
    match (state.last(x), state.last(y)) {
        (Some(lx), Some(ly)) => state.hb().contains(lx, ly),
        _ => false,
    }
}

/// `x` is an *update-only* variable in `σ`: every modification of `x` is an
/// update or an initialising write (§5.1).
pub fn update_only(state: &C11State, x: VarId) -> bool {
    state
        .writes_to(x)
        .all(|w| state.event(w).is_update() || state.event(w).is_init())
}

/// Definition 5.1's consequence (3): if `x =σ_t v` then
/// `OW_σ(t)|x = { σ.last(x) }`. Exposed for the property tests.
pub fn dv_implies_singleton_ow(state: &C11State, t: ThreadId, x: VarId) -> bool {
    if determinate_value(state, t, x).is_none() {
        return true; // vacuous
    }
    let last = state.last(x).expect("dv implies a last write");
    let ow: Vec<EventId> = observable_writes(state, t)
        .iter()
        .filter(|&w| state.event(w).var() == x)
        .collect();
    ow == vec![last]
}

/// Lemma 5.4 (Determinate-Value Agreement) on a concrete state: any two
/// threads with determinate values for `x` agree.
pub fn agreement_holds(state: &C11State, x: VarId, threads: &[ThreadId]) -> bool {
    let vals: Vec<Val> = threads
        .iter()
        .filter_map(|&t| determinate_value(state, t, x))
        .collect();
    vals.windows(2).all(|w| w[0] == w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    use c11_core::semantics::{read_transitions, write_transitions};

    const X: VarId = VarId(0);
    const Y: VarId = VarId(1);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn initial_state_is_determinate_for_everyone() {
        // The Init rule of Figure 4: in σ₀ every variable is determinate
        // with its initial value, for every thread.
        let s = C11State::initial(&[7, 9]);
        for t in [T1, T2, ThreadId(5)] {
            assert_eq!(determinate_value(&s, t, X), Some(7));
            assert_eq!(determinate_value(&s, t, Y), Some(9));
        }
    }

    #[test]
    fn example_5_2_left_state_is_determinate() {
        // Left state of Example 5.2: wr₁(x,2) sb-before wrR₁(y,1), which is
        // read-acquired by rdA₂(y,1). Then x =_2 2 holds.
        let s = C11State::initial(&[0, 0]);
        let w = &write_transitions(&s, T1, X, 2, false)[0];
        let wy = &write_transitions(&w.state, T1, Y, 1, true)[0];
        let r = &read_transitions(&wy.state, T2, Y, true)
            .into_iter()
            .find(|t| t.action.rdval() == Some(1))
            .unwrap();
        assert!(dv_holds(&r.state, T2, X, 2));
        assert!(dv_implies_singleton_ow(&r.state, T2, X));
    }

    #[test]
    fn example_5_2_right_state_is_not_determinate() {
        // Right state: x's last write is by thread 0 (init) read *relaxed*
        // by t1; t1's own rf edge is unsynchronised, so after t2 acquires
        // y it has no hb to the x-write … construct: t1 reads x (relaxed)
        // from a t3 write, then releases y; t2 acquires y. The x-write is
        // not in t2's cone because rf alone gives no hb.
        let s = C11State::initial(&[0, 0]);
        let wx = &write_transitions(&s, ThreadId(3), X, 2, false)[0];
        let rx = &read_transitions(&wx.state, T1, X, false)
            .into_iter()
            .find(|t| t.action.rdval() == Some(2))
            .unwrap();
        let wy = &write_transitions(&rx.state, T1, Y, 1, true)[0];
        let ry = &read_transitions(&wy.state, T2, Y, true)
            .into_iter()
            .find(|t| t.action.rdval() == Some(1))
            .unwrap();
        // Thread 2 can only observe the last x-write……
        assert!(dv_implies_singleton_ow(&ry.state, T2, X));
        // …but the determinate-value assertion fails: no hb into t2.
        assert_eq!(determinate_value(&ry.state, T2, X), None);
    }

    #[test]
    fn variable_order_via_sb() {
        // x →σ y after one thread writes x then y.
        let s = C11State::initial(&[0, 0]);
        let wx = &write_transitions(&s, T1, X, 1, false)[0];
        let wy = &write_transitions(&wx.state, T1, Y, 2, false)[0];
        assert!(variable_order(&wy.state, X, Y));
        assert!(!variable_order(&wy.state, Y, X));
    }

    #[test]
    fn update_only_tracking() {
        let s = C11State::initial(&[0]);
        assert!(
            update_only(&s, X),
            "initially every variable is update-only"
        );
        let u = &c11_core::semantics::update_transitions(&s, T1, X, 5)[0];
        assert!(update_only(&u.state, X));
        let w = &write_transitions(&u.state, T2, X, 7, false)[0];
        assert!(!update_only(&w.state, X), "a plain write breaks it");
    }

    #[test]
    fn agreement_lemma_5_4() {
        let s = C11State::initial(&[3]);
        assert!(agreement_holds(&s, X, &[T1, T2]));
        // After an unpublished write, t1 is determinate (its own write)
        // and t2 is not — still no disagreement (vacuous for t2).
        let w = &write_transitions(&s, T1, X, 4, false)[0];
        assert_eq!(determinate_value(&w.state, T1, X), Some(4));
        assert_eq!(determinate_value(&w.state, T2, X), None);
        assert!(agreement_holds(&w.state, X, &[T1, T2]));
    }

    #[test]
    fn cone_contains_inits_own_events_and_hb_predecessors() {
        let s = C11State::initial(&[0, 0]);
        let w = &write_transitions(&s, T1, X, 1, true)[0];
        let r = &read_transitions(&w.state, T2, X, true)
            .into_iter()
            .find(|t| t.action.rdval() == Some(1))
            .unwrap();
        let cone = happens_before_cone(&r.state, T2);
        assert!(cone.contains(0) && cone.contains(1), "inits");
        assert!(cone.contains(w.event), "release write hb-before t2's read");
        assert!(cone.contains(r.event), "own event");
    }

    #[test]
    fn relaxed_rf_gives_no_cone_membership() {
        let s = C11State::initial(&[0]);
        let w = &write_transitions(&s, T1, X, 1, false)[0]; // relaxed write
        let r = &read_transitions(&w.state, T2, X, false)
            .into_iter()
            .find(|t| t.action.rdval() == Some(1))
            .unwrap();
        let cone = happens_before_cone(&r.state, T2);
        assert!(!cone.contains(w.event), "relaxed rf is not hb");
    }

    #[test]
    fn dv_with_missing_variable_is_none() {
        let s = C11State::initial(&[0]);
        assert_eq!(determinate_value(&s, T1, VarId(9)), None);
        assert!(!variable_order(&s, X, VarId(9)));
    }

    #[test]
    fn lemma_5_3_determinate_value_read() {
        // If x =σ_t v, a read transition by t on x returns v.
        let s = C11State::initial(&[0, 0]);
        let wx = &write_transitions(&s, T1, X, 2, false)[0];
        let v = determinate_value(&wx.state, T1, X).unwrap();
        for r in read_transitions(&wx.state, T1, X, false) {
            assert_eq!(r.action.rdval(), Some(v));
        }
    }

    #[test]
    fn lemma_5_6_last_modification() {
        // (1) If x =σ_t v, any transition by t on x observes σ.last(x).
        let s = C11State::initial(&[0]);
        let wx = &write_transitions(&s, T1, X, 2, false)[0];
        assert!(dv_holds(&wx.state, T1, X, 2));
        let last = wx.state.last(X).unwrap();
        for tr in read_transitions(&wx.state, T1, X, false) {
            assert_eq!(tr.observed, last);
        }
        for tr in write_transitions(&wx.state, T1, X, 3, false) {
            assert_eq!(tr.observed, last);
        }
        // (2) If x is update-only, any write/update observes σ.last(x).
        let s = C11State::initial(&[0]);
        let u1 = &c11_core::semantics::update_transitions(&s, T1, X, 1)[0];
        let u2s = c11_core::semantics::update_transitions(&u1.state, T2, X, 2);
        assert!(update_only(&u1.state, X));
        for tr in &u2s {
            assert_eq!(tr.observed, u1.state.last(X).unwrap());
        }
    }

    #[test]
    fn dv_fails_when_thread_lags_behind() {
        // t1 writes x twice; t2 has seen nothing: no determinate value for
        // t2 (it can read 0, 1, or 2).
        let s = C11State::initial(&[0]);
        let w1 = &write_transitions(&s, T1, X, 1, false)[0];
        let w2 = &write_transitions(&w1.state, T1, X, 2, false)[0];
        assert_eq!(determinate_value(&w2.state, T2, X), None);
        assert_eq!(determinate_value(&w2.state, T1, X), Some(2));
        let vals: Vec<_> = read_transitions(&w2.state, T2, X, false)
            .iter()
            .filter_map(|t| t.action.rdval())
            .collect();
        assert_eq!(vals.len(), 3);
    }

    #[test]
    fn example_event_ids_cover_updates() {
        // An update's write is determinate for its own thread afterwards.
        let s = C11State::initial(&[0]);
        let u = &c11_core::semantics::update_transitions(&s, T1, X, 8)[0];
        assert!(dv_holds(&u.state, T1, X, 8));
    }
}
