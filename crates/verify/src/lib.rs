//! The paper's verification method (§5): determinate-value and
//! variable-ordering assertions, the Figure-4 inference rules, and the two
//! case studies (Peterson's algorithm, message passing).
//!
//! The paper proves its rules sound by hand (Appendix B) and discharges the
//! Peterson invariants by hand (Appendix D). Here both become *mechanical*:
//!
//! * [`rules`] re-checks every Figure-4 rule instance along every reachable
//!   transition of a program (experiment E9);
//! * [`peterson`] model-checks the paper's invariants (4)–(10) and the
//!   mutual-exclusion theorem over the full (bounded) state space (E11);
//! * [`mp`] replays the message-passing proof of Example 5.7 (E12);
//! * [`casestudies`] extends the method beyond the paper: a test-and-set
//!   spinlock with a §5-style data-protection invariant, and a naive flag
//!   mutex as a negative control.

pub mod assertions;
pub mod casestudies;
pub mod mp;
pub mod peterson;
pub mod rules;

pub use assertions::{
    determinate_value, dv_holds, happens_before_cone, update_only, variable_order,
};
pub use peterson::{peterson_program, PetersonReport};
pub use rules::{check_rules_on_transition, Rule, RuleViolation};
