//! The Appendix E experiment: bounded equivalence of the eco-based
//! Coherence axiom and weak canonical RAR consistency (Theorem C.5),
//! exhaustive at small sizes and sampled at the paper's size-7 bound.
//!
//! ```sh
//! cargo run --release --example memalloy_check
//! ```

use c11_operational::axiomatic::memcheck::{
    equivalence_check, equivalence_sample, CandidateConfig,
};

fn main() {
    println!(
        "{:<28} {:>12} {:>12} {:>14} {:>8}",
        "configuration", "candidates", "consistent", "inconsistent", "agree"
    );
    for (events, threads, vars) in [(2, 2, 2), (3, 2, 2), (3, 3, 2), (4, 2, 2)] {
        let t0 = std::time::Instant::now();
        let r = equivalence_check(&CandidateConfig {
            events,
            max_threads: threads,
            max_vars: vars,
        });
        println!(
            "{:<28} {:>12} {:>12} {:>14} {:>8}   ({:?})",
            format!("exhaustive n={events} T≤{threads} V≤{vars}"),
            r.candidates,
            r.both_consistent,
            r.both_inconsistent,
            if r.agrees() { "yes" } else { "NO" },
            t0.elapsed()
        );
        assert!(r.agrees(), "Theorem C.5 refuted: {:?}", r.disagreements);
    }
    for (events, samples) in [(5, 2000), (6, 2000), (7, 2000)] {
        let t0 = std::time::Instant::now();
        let r = equivalence_sample(0xC11_2019, events, 3, 2, samples);
        println!(
            "{:<28} {:>12} {:>12} {:>14} {:>8}   ({:?})",
            format!("sampled    n={events} T≤3 V≤2"),
            r.candidates,
            r.both_consistent,
            r.both_inconsistent,
            if r.agrees() { "yes" } else { "NO" },
            t0.elapsed()
        );
        assert!(r.agrees());
    }
    println!("\nTheorem C.5 agreed on every candidate (paper: verified in Memalloy to size 7).");
}
