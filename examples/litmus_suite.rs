fn main() {
    let results = c11_litmus::run_corpus();
    println!("{}", c11_litmus::runner::render_table(&results));
    let fails: Vec<_> = results.iter().filter(|r| !r.pass).collect();
    if !fails.is_empty() {
        std::process::exit(1);
    }
}
