//! E13 — the systems comparison motivating the paper: checking a program
//! *operationally* (reads validated on-the-fly; every state valid by
//! construction) versus the classical *axiomatic* two-step procedure
//! (enumerate pre-executions with unconstrained reads, then search for
//! rf/mo justifications).
//!
//! The table reports, for a family of widening programs, the work each
//! approach does. The expected shape: the axiomatic candidate count
//! explodes with the number of reads and values (unconstrained reads ×
//! rf choices × mo permutations), while the operational state count grows
//! with *valid* behaviours only.
//!
//! ```sh
//! cargo run --release --example operational_vs_axiomatic
//! ```

use c11_operational::axiomatic::justify::search_stats;
use c11_operational::prelude::*;
use std::time::Instant;

/// A widening family: k writer/reader pairs across two threads.
fn workload(k: usize) -> String {
    let vars: Vec<String> = (0..k).map(|i| format!("v{i}")).collect();
    let mut t1 = String::new();
    let mut t2 = String::new();
    for (i, v) in vars.iter().enumerate() {
        t1.push_str(&format!("{v} := {}; ", i + 1));
        t2.push_str(&format!("r{i} <- {v}; "));
    }
    format!(
        "vars {};\nthread t1 {{ {t1} }}\nthread t2 {{ {t2} }}",
        vars.join(" ")
    )
}

fn main() {
    println!(
        "{:<6} {:>12} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "k", "op-states", "op-time", "ax-pre-execs", "ax-candidates", "ax-valid", "ax-time"
    );
    for k in 1..=4 {
        let src = workload(k);
        let prog = parse_program(&src).unwrap();

        // Operational: explore under RA; every visited state is valid.
        let t0 = Instant::now();
        let op = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        let op_time = t0.elapsed();
        assert!(!op.truncated);

        // Axiomatic: explore under PE (reads unconstrained), then search
        // justifications for every terminated pre-execution.
        let t0 = Instant::now();
        let pe = Explorer::new(PreExecutionModel::for_program(&prog))
            .explore(&prog, ExploreConfig::default());
        let mut candidates = 0usize;
        let mut valid = 0usize;
        for f in &pe.finals {
            let st = search_stats(&f.mem);
            candidates += st.candidates;
            valid += st.valid;
        }
        let ax_time = t0.elapsed();

        println!(
            "{:<6} {:>12} {:>12.2?} {:>14} {:>14} {:>12} {:>12.2?}",
            k,
            op.unique,
            op_time,
            pe.finals.len(),
            candidates,
            valid,
            ax_time
        );
    }
    println!(
        "\nShape check: axiomatic work grows with (values+1)^reads × mo permutations;\n\
         operational work tracks valid behaviours only (the paper's motivation)."
    );
}
