//! Quickstart: one front door for every question — build a
//! [`CheckRequest`], pick a model/backend/mode, get a [`CheckReport`].
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use c11_operational::prelude::*;

fn main() {
    // Message passing: t1 publishes data then raises a flag; t2 reads the
    // flag, then the data. Three variants differ only in annotations.
    let variants = [
        (
            "relaxed",
            "vars d f;
             thread t1 { d := 5; f := 1; }
             thread t2 { r0 <- f; r1 <- d; }",
        ),
        (
            "release/acquire",
            "vars d f;
             thread t1 { d := 5; f :=R 1; }
             thread t2 { r0 <-A f; r1 <- d; }",
        ),
        (
            "swap-published",
            "vars d f;
             thread t1 { d := 5; f.swap(1); }
             thread t2 { r0 <-A f; r1 <- d; }",
        ),
    ];

    for (name, src) in variants {
        let report = CheckRequest::program(src)
            .model(ModelChoice::Ra)
            .backend(Backend::Parallel { workers: 2 })
            .mode(Mode::Outcomes)
            .run()
            .expect("variant parses");
        let CheckReport::Outcomes(outcomes) = &report else {
            unreachable!("Outcomes mode");
        };
        println!("=== message passing, {name} ===");
        println!(
            "  explored {} configurations ({} terminated) in {:?}",
            outcomes.stats.unique,
            outcomes.stats.finals,
            outcomes.stats.wall()
        );
        // Every reachable final is a valid C11 execution (Theorem 4.4):
        // the front door re-checks the axioms on RA runs.
        assert_eq!(outcomes.invalid_finals, 0);
        // The (flag, data) pairs thread 2 can observe.
        let mut pairs: Vec<(Val, Val)> = outcomes
            .outcomes
            .iter()
            .map(|row| {
                let t2 = &row.threads[1];
                let get = |r: u8| {
                    t2.iter()
                        .find(|(reg, _)| reg.0 == r)
                        .map(|&(_, v)| v)
                        .unwrap_or(0)
                };
                (get(0), get(1))
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        println!("  (flag, data) outcomes seen by thread 2: {pairs:?}");
        let stale = pairs.contains(&(1, 0));
        println!(
            "  stale read (flag=1, data=0): {}",
            if stale { "ALLOWED" } else { "forbidden" }
        );
        println!();
    }
}
