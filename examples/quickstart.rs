//! Quickstart: parse a program, explore it under the RA semantics, and
//! inspect outcomes and axioms.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use c11_operational::prelude::*;

fn main() {
    // Message passing: t1 publishes data then raises a flag; t2 reads the
    // flag, then the data. Three variants differ only in annotations.
    let variants = [
        (
            "relaxed",
            "vars d f;
             thread t1 { d := 5; f := 1; }
             thread t2 { r0 <- f; r1 <- d; }",
        ),
        (
            "release/acquire",
            "vars d f;
             thread t1 { d := 5; f :=R 1; }
             thread t2 { r0 <-A f; r1 <- d; }",
        ),
        (
            "swap-published",
            "vars d f;
             thread t1 { d := 5; f.swap(1); }
             thread t2 { r0 <-A f; r1 <- d; }",
        ),
    ];

    for (name, src) in variants {
        let prog = parse_program(src).expect("parses");
        let result = Explorer::new(RaModel).explore(&prog, ExploreConfig::default());
        println!("=== message passing, {name} ===");
        println!(
            "  explored {} configurations ({} terminated)",
            result.unique,
            result.finals.len()
        );
        // Every reachable state is a valid C11 execution (Theorem 4.4).
        for cfg in &result.finals {
            assert!(is_valid(&cfg.mem));
        }
        let mut outcomes: Vec<(u32, u32)> = result
            .final_register_states()
            .iter()
            .map(|s| {
                (
                    s.get(ThreadId(2), RegId(0)).unwrap(),
                    s.get(ThreadId(2), RegId(1)).unwrap(),
                )
            })
            .collect();
        outcomes.sort_unstable();
        outcomes.dedup();
        println!("  (flag, data) outcomes seen by thread 2: {outcomes:?}");
        let stale = outcomes.contains(&(1, 0));
        println!(
            "  stale read (flag=1, data=0): {}",
            if stale { "ALLOWED" } else { "forbidden" }
        );
        println!();
    }
}
