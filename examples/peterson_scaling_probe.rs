fn main() {
    for budget in [14usize, 16, 18] {
        let t0 = std::time::Instant::now();
        let r = c11_verify::peterson::check_peterson(budget);
        println!(
            "budget={budget} states={} truncated={} mutex={} fails={:?} time={:?}",
            r.stats.unique,
            r.stats.truncated,
            r.mutual_exclusion,
            r.invariant_failures,
            t0.elapsed()
        );
    }
}
