//! The paper's flagship verification (§5.2): Peterson's algorithm under
//! release-acquire C11, model-checked for mutual exclusion (Theorem 5.8)
//! and invariants (4)–(10) (Lemma D.1), plus the negative control with
//! relaxed annotations.
//!
//! ```sh
//! cargo run --release --example peterson [max_events]
//! ```

use c11_operational::explore::render_trace;
use c11_operational::verify::peterson::{
    check_peterson, find_mutex_violation, mutual_exclusion_holds, peterson_relaxed_program,
};

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(18);

    println!("== Peterson (release-acquire, Algorithm 1) ==");
    let t0 = std::time::Instant::now();
    let report = check_peterson(budget);
    println!("  event budget:        {budget}");
    println!("  states explored:     {}", report.stats.unique);
    println!("  truncated (spins):   {}", report.stats.truncated);
    println!("  mutual exclusion:    {}", report.mutual_exclusion);
    println!(
        "  invariants (4)-(10): {}",
        if report.invariant_failures.is_empty() {
            "all hold".to_string()
        } else {
            format!("FAILED {:?}", report.invariant_failures)
        }
    );
    println!("  wall time:           {:?}", t0.elapsed());

    println!("\n== Peterson (all annotations relaxed — negative control) ==");
    let t0 = std::time::Instant::now();
    let (holds, states) = mutual_exclusion_holds(&peterson_relaxed_program(), budget.min(16));
    println!("  states explored:     {states}");
    println!(
        "  mutual exclusion:    {} {}",
        holds,
        if holds {
            "(UNEXPECTED)"
        } else {
            "(violation found, as the paper predicts)"
        }
    );
    println!("  wall time:           {:?}", t0.elapsed());

    if !holds {
        let prog = peterson_relaxed_program();
        if let Some(trace) = find_mutex_violation(&prog, budget.min(16)) {
            println!("\n  counterexample (both threads reach line 5):");
            print!("{}", render_trace(&trace, &prog));
        }
    }
}
