use c11_operational::prelude::*;
use c11_operational::verify::peterson::{mutual_exclusion_holds, peterson_relaxed_program};

fn main() {
    let flag_relaxed = parse_program(
        "vars flag1 flag2 turn=1;
         thread t1 { while (true) { 2: flag1 := true; 3: turn.swap(2);
             4: while (flag2 == 1 && turn == 2) { skip; } 5: skip; 6: flag1 := false; } }
         thread t2 { while (true) { 2: flag2 := true; 3: turn.swap(1);
             4: while (flag1 == 1 && turn == 1) { skip; } 5: skip; 6: flag2 := false; } }",
    )
    .unwrap();
    for budget in [18usize, 20, 22] {
        let t0 = std::time::Instant::now();
        let (holds, states) = mutual_exclusion_holds(&flag_relaxed, budget);
        println!(
            "flag-relaxed budget={budget} mutex={holds} states={states} time={:?}",
            t0.elapsed()
        );
    }
    let (holds, states) = mutual_exclusion_holds(&peterson_relaxed_program(), 16);
    println!("all-relaxed budget=16 mutex={holds} states={states}");
}
