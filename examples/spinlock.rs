//! Case study: a test-and-set spinlock built from the RA `swap`
//! (`r <- l.swap(1)` returns the exchanged value), protecting a counter.
//!
//! Verifies, in the paper's §5 style:
//!  * bounded mutual exclusion of the critical section, and
//!  * the *data-protection invariant*: the lock holder has a determinate
//!    view (`d =_t v`) of the protected variable — which requires the
//!    release unlock.
//!
//! ```sh
//! cargo run --release --example spinlock [max_events]
//! ```

use c11_operational::verify::casestudies::check_spinlock;

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(18);

    for (label, release) in [
        ("release unlock (l :=R 0)", true),
        ("relaxed unlock (l := 0)", false),
    ] {
        let t0 = std::time::Instant::now();
        let r = check_spinlock(budget, release);
        println!("== TAS spinlock, {label} ==");
        println!("  states:            {}", r.stats.unique);
        println!("  mutual exclusion:  {}", r.mutual_exclusion);
        println!(
            "  data protected:    {} {}",
            r.data_protected,
            if r.data_protected {
                "(holder always sees the latest counter)"
            } else {
                "(stale counter readable in the critical section!)"
            }
        );
        println!("  wall time:         {:?}\n", t0.elapsed());
    }
}
