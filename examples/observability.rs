//! Walkthrough of Examples 3.2–3.5: builds the paper's four-thread state
//! and prints the encountered / observable / covered write sets per
//! thread, exactly the quantities Definition §3.2 computes.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use c11_operational::core::obs::{covered_writes, encountered_writes, observable_writes};
use c11_operational::core::paper_examples::{example_3_2, example_var_names};
use c11_operational::core::semantics::write_transitions;
use c11_operational::prelude::*;

fn main() {
    let (state, _ids) = example_3_2();
    let names = example_var_names();
    println!("Example 3.2 state:\n{}", state.render(&names));

    let show = |label: &str, set: &c11_operational::relations::BitSet| {
        let events: Vec<String> = set
            .iter()
            .map(|e| format!("e{e}={:?}", state.event(e).action))
            .collect();
        println!("  {label} = {{{}}}", events.join(", "));
    };

    for t in 1..=4u8 {
        println!("thread {t}:");
        show("EW", &encountered_writes(&state, ThreadId(t)));
        show("OW", &observable_writes(&state, ThreadId(t)));
    }
    println!("covered:");
    show("CW", &covered_writes(&state));

    // Example 3.5: no write can be inserted between a covered write and
    // its update.
    println!("\nExample 3.5 — write insertion points for x by thread 3:");
    for tr in write_transitions(&state, ThreadId(3), VarId(0), 9, false) {
        println!(
            "  may insert after e{} = {:?}",
            tr.observed,
            state.event(tr.observed).action
        );
    }

    // The state is valid under Definition 4.2.
    assert!(is_valid(&state));
    println!("\nstate satisfies all Definition 4.2 axioms ✓");
}
